"""Tests for the yacc-like grammar DSL."""

import pytest

from repro.grammar import (
    Associativity,
    GrammarSyntaxError,
    Nonterminal,
    Terminal,
    load_grammar,
)


class TestBasicParsing:
    def test_single_rule(self):
        grammar = load_grammar("s : 'a' ;")
        assert grammar.num_user_productions == 1
        assert grammar.start == Nonterminal("s")

    def test_alternatives(self):
        grammar = load_grammar("s : 'a' | 'b' | 'c' ;")
        assert grammar.num_user_productions == 3

    def test_epsilon_via_empty_directive(self):
        grammar = load_grammar("s : 'a' s | %empty ;")
        productions = grammar.productions_of(Nonterminal("s"))
        assert any(p.rhs == () for p in productions)

    def test_epsilon_via_bare_alternative(self):
        grammar = load_grammar("s : 'a' s | ;")
        productions = grammar.productions_of(Nonterminal("s"))
        assert any(p.rhs == () for p in productions)

    def test_cup_style_separator(self):
        grammar = load_grammar("s ::= 'a' ;")
        assert grammar.num_user_productions == 1

    def test_comments_ignored(self):
        grammar = load_grammar(
            """
            // line comment
            # hash comment
            /* block
               comment */
            s : 'a' ; // trailing
            """
        )
        assert grammar.num_user_productions == 1

    def test_terminal_vs_nonterminal_inference(self):
        grammar = load_grammar("s : IF e THEN s ; e : NUM ;")
        assert Terminal("IF") in grammar.terminals
        assert Nonterminal("e") in grammar.nonterminals

    def test_quoted_terminals(self):
        grammar = load_grammar("s : '(' s ')' | ID ;")
        assert Terminal("(") in grammar.terminals
        assert Terminal(")") in grammar.terminals


class TestDirectives:
    def test_start_directive(self):
        grammar = load_grammar("%start b\na : 'x' ;\nb : a ;")
        assert grammar.start == Nonterminal("b")

    def test_grammar_name_directive(self):
        grammar = load_grammar("%grammar myname\ns : 'a' ;")
        assert grammar.name == "myname"

    def test_precedence_directives(self):
        grammar = load_grammar(
            """
            %left '+' '-'
            %left '*'
            %right POW
            %nonassoc EQ
            e : e '+' e | e '*' e | e POW e | e EQ e | ID ;
            """
        )
        prec = grammar.precedence
        plus = prec.level_of(Terminal("+"))
        times = prec.level_of(Terminal("*"))
        power = prec.level_of(Terminal("POW"))
        eq = prec.level_of(Terminal("EQ"))
        assert plus is not None and times is not None
        assert plus.rank < times.rank < power.rank < eq.rank
        assert plus.associativity is Associativity.LEFT
        assert power.associativity is Associativity.RIGHT
        assert eq.associativity is Associativity.NONASSOC

    def test_prec_override(self):
        grammar = load_grammar(
            """
            %left '-'
            %right UMINUS
            e : e '-' e | '-' e %prec UMINUS | ID ;
            """
        )
        unary = next(
            p for p in grammar.user_productions() if len(p.rhs) == 2
        )
        assert unary.prec_override == Terminal("UMINUS")

    def test_token_directive_accepted(self):
        grammar = load_grammar("%token A B C\ns : A B C ;")
        assert grammar.num_user_productions == 1


class TestErrors:
    def test_empty_text(self):
        with pytest.raises(GrammarSyntaxError):
            load_grammar("")

    def test_missing_semicolon(self):
        with pytest.raises(GrammarSyntaxError):
            load_grammar("s : 'a'")

    def test_unknown_directive(self):
        with pytest.raises(GrammarSyntaxError):
            load_grammar("%bogus\ns : 'a' ;")

    def test_unexpected_character(self):
        with pytest.raises(GrammarSyntaxError) as info:
            load_grammar("s : @ ;")
        assert "line 1" in str(info.value)

    def test_precedence_without_terminals(self):
        with pytest.raises(GrammarSyntaxError):
            load_grammar("%left\ns : 'a' ;")

    def test_quoted_nonterminal_collision_rejected(self):
        with pytest.raises(GrammarSyntaxError) as info:
            load_grammar("s : 'b' ;\nb : 'c' ;")
        assert "collides" in str(info.value)

    def test_line_numbers_in_errors(self):
        with pytest.raises(GrammarSyntaxError) as info:
            load_grammar("s : 'a' ;\n%bogus\n")
        assert "line 2" in str(info.value)


class TestErrorLines:
    """Every DSL parse error carries a structured line number."""

    @pytest.mark.parametrize(
        "text,line",
        [
            ("s : 'a'", 1),  # unexpected EOF mid-rule
            ("s : 'a' ;\n%bogus\n", 2),  # unknown directive
            ("%left\ns : 'a' ;", 1),  # directive without terminals
            ("%left '+'\n%right '+'\ne : e '+' e | ID ;", 2),  # dup decl
            ("s : 'b' ;\nb : 'c' ;", 1),  # quoted/nonterminal collision
            ("s : 'a' ;\nt 'x' ;", 2),  # missing ':' after rule head
        ],
    )
    def test_error_carries_line(self, text, line):
        from repro.grammar import GrammarError

        # Duplicate declarations raise DuplicateDeclarationError, the
        # rest GrammarSyntaxError; both inherit line handling from
        # GrammarError.
        with pytest.raises(GrammarError) as info:
            load_grammar(text)
        assert info.value.line == line
        assert f"line {line}:" in str(info.value)


class TestSourceSpans:
    """DSL loading threads source lines into the grammar objects."""

    TEXT = "%token A B\n%left '+'\ne : e '+' e\n  | A\n  | B ;\n"

    def test_production_lines_per_alternative(self):
        grammar = load_grammar(self.TEXT)
        lines = [p.line for p in grammar.user_productions()]
        assert lines == [3, 4, 5]

    def test_augmented_production_has_no_line(self):
        grammar = load_grammar(self.TEXT)
        assert grammar.start_production.line is None

    def test_precedence_declaration_line(self):
        grammar = load_grammar(self.TEXT)
        assert grammar.precedence.declaration_line(Terminal("+")) == 2

    def test_token_declaration_lines(self):
        grammar = load_grammar(self.TEXT)
        assert grammar.token_declarations == {"A": 1, "B": 1}

    def test_programmatic_grammars_have_no_lines(self):
        from repro.grammar import GrammarBuilder

        builder = GrammarBuilder("prog")
        builder.rule("s", ["a"])
        grammar = builder.build()
        assert all(p.line is None for p in grammar.user_productions())

    def test_line_metadata_does_not_affect_equality(self):
        with_lines = load_grammar("s : 'a' ;")
        programmatic_rhs = next(with_lines.user_productions())
        assert programmatic_rhs.line == 1
        from repro.grammar.grammar import Production

        bare = Production(1, programmatic_rhs.lhs, programmatic_rhs.rhs)
        assert bare == programmatic_rhs


class TestRoundTrip:
    def test_figure1_text(self, figure1):
        assert figure1.name == "figure1"
        assert figure1.num_user_nonterminals == 3
        assert figure1.num_user_productions == 8

    def test_load_grammar_file(self, tmp_path):
        path = tmp_path / "tiny.y"
        path.write_text("s : 'a' s | %empty ;\n")
        from repro.grammar import load_grammar_file

        grammar = load_grammar_file(str(path))
        assert grammar.name == "tiny"
        assert grammar.num_user_productions == 2


class TestAlgorithmDirective:
    def test_default_is_lalr(self):
        from repro.grammar import load_grammar

        assert load_grammar("s : 'a' ;").table_algorithm == "lalr"

    def test_directive_sets_algorithm(self):
        from repro.grammar import load_grammar

        grammar = load_grammar("%algorithm ielr\ns : 'a' ;")
        assert grammar.table_algorithm == "ielr"

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("lalr(1)", "lalr"),
            ("IELR(1)", "ielr"),
            ("minimal-lr1", "ielr"),
            ("LR(1)", "lr1"),
            ("canonical", "lr1"),
        ],
    )
    def test_aliases_normalise(self, alias, canonical):
        from repro.grammar import normalize_algorithm

        assert normalize_algorithm(alias) == canonical

    def test_unknown_algorithm_is_a_grammar_error_with_line(self):
        from repro.grammar import GrammarError, load_grammar

        with pytest.raises(GrammarError) as info:
            load_grammar("s : 'a' ;\n%algorithm glr\n")
        assert "line 2" in str(info.value)
        assert "unknown table algorithm 'glr'" in str(info.value)

    def test_unknown_algorithm_error_type(self):
        from repro.grammar import UnknownAlgorithmError, normalize_algorithm

        with pytest.raises(UnknownAlgorithmError):
            normalize_algorithm("glr")

    def test_round_trip_preserves_directive(self):
        from repro.grammar import load_grammar
        from repro.grammar.emit import dump_grammar

        grammar = load_grammar("%algorithm lr1\ns : 'a' ;")
        text = dump_grammar(grammar)
        assert "%algorithm lr1" in text
        assert load_grammar(text).table_algorithm == "lr1"

    def test_default_emits_no_directive(self):
        from repro.grammar import load_grammar
        from repro.grammar.emit import dump_grammar

        assert "%algorithm" not in dump_grammar(load_grammar("s : 'a' ;"))
