"""Tests for the programmatic grammar builder."""

import pytest

from repro.grammar import (
    Associativity,
    GrammarBuilder,
    InvalidGrammarError,
    Nonterminal,
    Terminal,
    grammar_from_rules,
)


class TestRuleForms:
    def test_rhs_as_string(self):
        grammar = GrammarBuilder().rule("s", "A b c").build()
        production = next(grammar.user_productions())
        assert [str(s) for s in production.rhs] == ["A", "b", "c"]

    def test_rhs_as_sequence(self):
        grammar = GrammarBuilder().rule("s", ["A", "b"]).build()
        assert len(next(grammar.user_productions()).rhs) == 2

    def test_empty_rhs(self):
        grammar = GrammarBuilder().rule("s", "").build()
        assert next(grammar.user_productions()).rhs == ()

    def test_rules_with_alternatives(self):
        builder = GrammarBuilder()
        builder.rules("s", "A | B C | %empty")
        grammar = builder.build()
        arities = sorted(len(p.rhs) for p in grammar.user_productions())
        assert arities == [0, 1, 2]

    def test_prec_override(self):
        builder = GrammarBuilder()
        builder.rule("e", "MINUS e", prec="UMINUS")
        builder.rule("e", "ID")
        grammar = builder.build()
        production = next(iter(grammar.user_productions()))
        assert production.prec_override == Terminal("UMINUS")


class TestResolution:
    def test_lhs_names_become_nonterminals(self):
        builder = GrammarBuilder()
        builder.rule("s", "t X")
        builder.rule("t", "Y")
        grammar = builder.build()
        assert Nonterminal("t") in grammar.nonterminals
        assert Terminal("X") in grammar.terminals
        assert Terminal("Y") in grammar.terminals

    def test_start_defaults_to_first_rule(self):
        grammar = GrammarBuilder().rule("top", "X").rule("other", "Y").build()
        assert grammar.start == Nonterminal("top")

    def test_explicit_start(self):
        grammar = (
            GrammarBuilder().rule("a", "b").rule("b", "X").start("b").build()
        )
        assert grammar.start == Nonterminal("b")

    def test_build_start_argument_wins(self):
        grammar = GrammarBuilder().rule("a", "X").rule("b", "Y").build(start="b")
        assert grammar.start == Nonterminal("b")

    def test_empty_builder_rejected(self):
        with pytest.raises(InvalidGrammarError):
            GrammarBuilder().build()


class TestPrecedenceChaining:
    def test_fluent_levels(self):
        grammar = (
            GrammarBuilder()
            .left("+", "-")
            .left("*")
            .right("^")
            .nonassoc("EQ")
            .rule("e", "e + e")
            .rule("e", "ID")
            .build()
        )
        precedence = grammar.precedence
        assert precedence.level_of(Terminal("+")).associativity is Associativity.LEFT
        assert precedence.level_of(Terminal("^")).associativity is Associativity.RIGHT
        assert (
            precedence.level_of(Terminal("+")).rank
            < precedence.level_of(Terminal("*")).rank
            < precedence.level_of(Terminal("^")).rank
            < precedence.level_of(Terminal("EQ")).rank
        )


class TestGrammarFromRules:
    def test_shorthand(self):
        grammar = grammar_from_rules(
            "pairs", [("s", "A s B"), ("s", "")], start="s"
        )
        assert grammar.name == "pairs"
        assert grammar.num_user_productions == 2
