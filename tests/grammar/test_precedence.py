"""Tests for precedence declarations."""

import pytest

from repro.grammar import (
    Associativity,
    DuplicateDeclarationError,
    PrecedenceTable,
    Terminal,
)


@pytest.fixture
def table():
    table = PrecedenceTable()
    table.declare(Associativity.LEFT, [Terminal("+"), Terminal("-")])
    table.declare(Associativity.LEFT, [Terminal("*")])
    table.declare(Associativity.RIGHT, [Terminal("^")])
    return table


class TestDeclaration:
    def test_later_levels_bind_tighter(self, table):
        assert table.level_of(Terminal("+")).rank < table.level_of(Terminal("*")).rank
        assert table.level_of(Terminal("*")).rank < table.level_of(Terminal("^")).rank

    def test_same_line_same_level(self, table):
        assert table.level_of(Terminal("+")) == table.level_of(Terminal("-"))

    def test_undeclared_is_none(self, table):
        assert table.level_of(Terminal("%")) is None

    def test_duplicate_rejected(self, table):
        with pytest.raises(DuplicateDeclarationError):
            table.declare(Associativity.RIGHT, [Terminal("+")])

    def test_contains_and_len(self, table):
        assert Terminal("+") in table
        assert Terminal("?") not in table
        assert len(table) == 4


class TestProductionLevel:
    def test_rightmost_terminal_rules(self, table):
        rhs = (Terminal("+"), Terminal("*"))
        assert table.production_level(rhs) == table.level_of(Terminal("*"))

    def test_override_wins(self, table):
        rhs = (Terminal("+"),)
        level = table.production_level(rhs, override=Terminal("^"))
        assert level == table.level_of(Terminal("^"))

    def test_no_terminals_is_none(self, table):
        assert table.production_level(()) is None

    def test_copy_is_independent(self, table):
        clone = table.copy()
        clone.declare(Associativity.LEFT, [Terminal("@")])
        assert Terminal("@") in clone
        assert Terminal("@") not in table
