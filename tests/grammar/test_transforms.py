"""Tests for grammar transforms and metrics."""

import pytest

from repro.grammar import GrammarBuilder, Nonterminal, load_grammar
from repro.grammar.transforms import (
    GrammarMetrics,
    has_derivation_cycles,
    left_recursive_nonterminals,
    reduce_grammar,
    remove_nonproductive,
    remove_unreachable,
    unit_productions,
)
from repro.parsing import EarleyParser


def names(symbols):
    return {str(s) for s in symbols}


class TestRemoveNonproductive:
    def test_drops_nonproductive(self):
        grammar = load_grammar("s : 'a' | loop ; loop : loop 'x' ;")
        reduced = remove_nonproductive(grammar)
        assert "loop" not in names(reduced.nonterminals)
        assert reduced.num_user_productions == 1

    def test_drops_productions_using_nonproductive(self):
        grammar = load_grammar("s : 'a' | 'b' loop ; loop : loop 'x' ;")
        reduced = remove_nonproductive(grammar)
        assert reduced.num_user_productions == 1

    def test_empty_language_rejected(self):
        grammar = load_grammar("s : s 'a' ;")
        with pytest.raises(ValueError, match="no terminal string"):
            remove_nonproductive(grammar)

    def test_noop_on_clean_grammar(self, expr_grammar):
        reduced = remove_nonproductive(expr_grammar)
        assert reduced.num_user_productions == expr_grammar.num_user_productions


class TestRemoveUnreachable:
    def test_drops_unreachable(self):
        grammar = load_grammar("s : 'a' ; dead : 'b' ;")
        reduced = remove_unreachable(grammar)
        assert "dead" not in names(reduced.nonterminals)

    def test_reduce_order_matters(self):
        # u is productive but only reachable through the nonproductive n.
        grammar = load_grammar("s : 'a' | n ; n : n u ; u : 'b' ;")
        reduced = reduce_grammar(grammar)
        assert names(reduced.nonterminals) == {"START'", "s"}

    def test_language_preserved(self, figure1):
        reduced = reduce_grammar(figure1)
        earley_before = EarleyParser(figure1)
        earley_after = EarleyParser(reduced)
        from repro.grammar import Terminal

        sample = [Terminal(t) for t in "IF DIGIT THEN arr [ DIGIT ] := DIGIT".split()]
        assert earley_before.recognizes(figure1.start, sample)
        assert earley_after.recognizes(reduced.start, sample)


class TestStructuralProbes:
    def test_unit_productions(self, expr_grammar):
        units = unit_productions(expr_grammar)
        assert {str(p) for p in units} == {"e ::= t", "t ::= f"}

    def test_left_recursion_direct(self, expr_grammar):
        assert names(left_recursive_nonterminals(expr_grammar)) == {"e", "t"}

    def test_left_recursion_indirect(self):
        grammar = load_grammar("aa : bb 'x' | 'a' ; bb : aa 'y' | 'b' ;")
        assert {"aa", "bb"} <= names(left_recursive_nonterminals(grammar))

    def test_left_recursion_through_nullable(self):
        grammar = load_grammar("aa : opt aa 'x' | 'z' ; opt : 'o' | %empty ;")
        assert "aa" in names(left_recursive_nonterminals(grammar))

    def test_no_left_recursion(self):
        grammar = load_grammar("s : 'a' s | 'b' ;")
        assert not left_recursive_nonterminals(grammar)

    def test_cycles_detected(self):
        assert has_derivation_cycles(load_grammar("s : s | 'a' ;"))
        assert has_derivation_cycles(
            load_grammar("aa : bb | 'x' ; bb : aa | 'y' ;")
        )

    def test_cycle_through_nullable_context(self):
        grammar = load_grammar("aa : opt aa | 'x' ; opt : %empty | 'o' ;")
        assert has_derivation_cycles(grammar)

    def test_no_cycles(self, expr_grammar, figure1):
        assert not has_derivation_cycles(expr_grammar)
        assert not has_derivation_cycles(figure1)


class TestMetrics:
    def test_expr_metrics(self, expr_grammar):
        metrics = GrammarMetrics.of(expr_grammar)
        assert metrics.nonterminals == 3
        assert metrics.productions == 6
        assert metrics.unit_productions == 2
        assert metrics.left_recursive == 2
        assert metrics.max_rhs_length == 3
        assert not metrics.has_cycles
        assert metrics.nullable_nonterminals == 0

    def test_describe(self, expr_grammar):
        text = GrammarMetrics.of(expr_grammar).describe()
        assert "3 nonterminals" in text
        assert "6 productions" in text

    def test_corpus_java_metrics(self):
        from repro.corpus.java import java_base

        metrics = GrammarMetrics.of(java_base())
        assert metrics.nonterminals == 150
        assert metrics.productions == 326
        assert metrics.nullable_nonterminals > 10  # the Opt nonterminals
