"""Tests for Grammar and Production."""

import pytest

from repro.grammar import (
    END_OF_INPUT,
    Grammar,
    GrammarBuilder,
    InvalidGrammarError,
    Nonterminal,
    Production,
    Terminal,
    UndefinedSymbolError,
    grammar_from_rules,
)


def build(name="g", **kwargs):
    builder = GrammarBuilder(name)
    builder.rule("s", "A s B")
    builder.rule("s", "")
    return builder.build(**kwargs)


class TestAugmentation:
    def test_start_production_prepended(self):
        grammar = build()
        start = grammar.start_production
        assert start.index == 0
        assert start.lhs == grammar.augmented_start
        assert start.rhs == (Nonterminal("s"), END_OF_INPUT)

    def test_user_productions_exclude_start(self):
        grammar = build()
        assert all(p.index > 0 for p in grammar.user_productions())
        assert grammar.num_user_productions == 2

    def test_counts_exclude_augmented(self):
        grammar = build()
        assert grammar.num_user_nonterminals == 1

    def test_figure1_counts(self):
        rules = [
            ("stmt", "IF expr THEN stmt ELSE stmt"),
            ("stmt", "IF expr THEN stmt"),
            ("stmt", "expr Q stmt stmt"),
            ("stmt", "arr LB expr RB ASSIGN expr"),
            ("expr", "num"),
            ("expr", "expr PLUS expr"),
            ("num", "DIGIT"),
            ("num", "num DIGIT"),
        ]
        grammar = grammar_from_rules("figure1", rules)
        assert grammar.num_user_nonterminals == 3
        assert grammar.num_user_productions == 8


class TestValidation:
    def test_undefined_nonterminal_rejected(self):
        with pytest.raises(UndefinedSymbolError):
            Grammar(
                [(Nonterminal("s"), (Nonterminal("missing"),), None)],
                start=Nonterminal("s"),
            )

    def test_empty_grammar_rejected(self):
        with pytest.raises(InvalidGrammarError):
            Grammar([], start=Nonterminal("s"))

    def test_undefined_start_rejected(self):
        with pytest.raises(UndefinedSymbolError):
            Grammar(
                [(Nonterminal("s"), (Terminal("a"),), None)],
                start=Nonterminal("other"),
            )

    def test_eof_in_rhs_rejected(self):
        with pytest.raises(InvalidGrammarError):
            Grammar(
                [(Nonterminal("s"), (END_OF_INPUT,), None)],
                start=Nonterminal("s"),
            )


class TestHygieneAnalyses:
    def test_unreachable_detected(self):
        builder = GrammarBuilder()
        builder.rule("s", "a")
        builder.rule("dead", "b")
        grammar = builder.build(start="s")
        assert grammar.unreachable_nonterminals == {Nonterminal("dead")}

    def test_nonproductive_detected(self):
        builder = GrammarBuilder()
        builder.rule("s", "a")
        builder.rule("s", "loop")
        builder.rule("loop", "loop x")
        grammar = builder.build(start="s")
        assert grammar.nonproductive_nonterminals == {Nonterminal("loop")}

    def test_clean_grammar_has_no_findings(self, expr_grammar):
        assert not expr_grammar.unreachable_nonterminals
        assert not expr_grammar.nonproductive_nonterminals


class TestIntrospection:
    def test_productions_of(self, expr_grammar):
        e = Nonterminal("e")
        productions = expr_grammar.productions_of(e)
        assert len(productions) == 2
        assert all(p.lhs == e for p in productions)

    def test_productions_of_unknown_is_empty(self, expr_grammar):
        assert expr_grammar.productions_of(Nonterminal("nope")) == ()

    def test_terminals_and_nonterminals_disjoint(self, figure1):
        assert not set(figure1.terminals) & set(figure1.nonterminals)

    def test_iteration_and_len(self, expr_grammar):
        assert len(list(expr_grammar)) == len(expr_grammar)

    def test_str_production(self):
        grammar = build()
        production = grammar.productions[2]
        assert str(production) == "s ::= /* empty */"

    def test_pretty_groups_alternatives(self, expr_grammar):
        text = expr_grammar.pretty()
        assert "e ::= e + t | t" in text
