"""Tests for the brute-force ambiguity detector."""

import pytest

from repro.baselines import BruteForceDetector, find_ambiguity
from repro.grammar import Nonterminal, load_grammar
from repro.parsing import EarleyParser


class TestAmbiguousGrammars:
    def test_finds_expression_ambiguity(self, ambiguous_expr):
        result = find_ambiguity(ambiguous_expr, max_length=8, time_limit=30)
        assert result.ambiguous
        assert result.witness is not None
        assert len(result.parses) == 2

    def test_witness_verified_by_earley(self, ambiguous_expr):
        result = find_ambiguity(ambiguous_expr, max_length=8, time_limit=30)
        earley = EarleyParser(ambiguous_expr)
        assert earley.is_ambiguous_form(ambiguous_expr.start, result.witness)

    def test_finds_dangling_else(self, figure1):
        result = find_ambiguity(figure1, max_length=12, time_limit=60)
        assert result.ambiguous

    def test_witness_is_minimal_length_frontier(self, ambiguous_expr):
        # Breadth-first enumeration finds a witness of minimal length.
        result = find_ambiguity(ambiguous_expr, max_length=8, time_limit=30)
        assert len(result.witness) == 5  # ID + ID + ID

    def test_parses_differ(self, ambiguous_expr):
        result = find_ambiguity(ambiguous_expr, max_length=8, time_limit=30)
        first, second = result.parses
        assert first != second
        assert first.leaf_symbols() == second.leaf_symbols()


class TestUnambiguousGrammars:
    def test_figure3_no_witness(self, figure3):
        result = find_ambiguity(figure3, max_length=8, time_limit=30)
        assert not result.ambiguous
        assert result.witness is None

    def test_expr_grammar_no_witness(self, expr_grammar):
        result = find_ambiguity(expr_grammar, max_length=6, time_limit=30)
        assert not result.ambiguous


class TestBudgets:
    def test_time_limit(self, figure1):
        import time

        detector = BruteForceDetector(figure1, max_length=40, time_limit=0.2)
        started = time.monotonic()
        result = detector.run()
        # Either found quickly or stopped near the budget.
        assert time.monotonic() - started < 5.0

    def test_form_budget_reports_exhausted(self, expr_grammar):
        detector = BruteForceDetector(expr_grammar, max_length=30, max_forms=50)
        result = detector.run()
        assert not result.ambiguous
        assert result.exhausted

    def test_stats_populated(self, ambiguous_expr):
        result = find_ambiguity(ambiguous_expr, max_length=8, time_limit=30)
        assert result.sentences_checked > 0
        assert result.forms_expanded > 0
        assert result.elapsed >= 0
