"""Tests for the conflict-guided filtered enumeration baseline."""

import pytest

from repro.automaton import build_lalr
from repro.baselines import BruteForceDetector, FilteredBruteForce
from repro.parsing import EarleyParser


@pytest.fixture
def auto(figure1):
    return build_lalr(figure1)


def conflict_on(auto, terminal_name):
    return next(c for c in auto.conflicts if str(c.terminal) == terminal_name)


class TestCandidates:
    def test_candidates_include_unifying_nonterminal(self, auto):
        filtered = FilteredBruteForce(auto)
        candidates = filtered.candidate_nonterminals(conflict_on(auto, "+"))
        assert "expr" in {str(n) for n in candidates}

    def test_candidates_exclude_augmented_start(self, auto):
        filtered = FilteredBruteForce(auto)
        for conflict in auto.conflicts:
            names = {str(n) for n in filtered.candidate_nonterminals(conflict)}
            assert "START'" not in names

    def test_innermost_ordering(self, auto):
        # expr has a smaller backward-reachability footprint than stmt for
        # the + conflict, so it is tried first.
        filtered = FilteredBruteForce(auto)
        candidates = filtered.candidate_nonterminals(conflict_on(auto, "+"))
        names = [str(n) for n in candidates]
        assert names.index("expr") < names.index("stmt")


class TestDetection:
    def test_finds_witness_per_conflict(self, auto, figure1):
        filtered = FilteredBruteForce(auto, time_limit=30.0)
        earley = EarleyParser(figure1)
        for conflict in auto.conflicts:
            result = filtered.run(conflict)
            assert result.ambiguous, str(conflict)
            assert result.nonterminal is not None
            assert earley.is_ambiguous_form(result.nonterminal, result.witness)

    def test_unambiguous_grammar_finds_nothing(self, figure3):
        automaton = build_lalr(figure3)
        filtered = FilteredBruteForce(automaton, max_length=8, time_limit=10.0)
        result = filtered.run(automaton.conflicts[0])
        assert not result.ambiguous

    def test_filtering_beats_blind_enumeration(self, auto, figure1):
        """The filtered detector inspects fewer sentences than the blind
        one for the expression-level conflict (it starts at expr, not at
        the start symbol)."""
        blind = BruteForceDetector(figure1, max_length=10, time_limit=30.0).run()
        filtered = FilteredBruteForce(auto, time_limit=30.0).run(
            conflict_on(auto, "+")
        )
        assert filtered.ambiguous and blind.ambiguous
        assert filtered.sentences_checked <= blind.sentences_checked

    def test_str_forms(self, auto):
        filtered = FilteredBruteForce(auto, time_limit=30.0)
        result = filtered.run(conflict_on(auto, "+"))
        assert "ambiguously" in str(result)
