"""Tests for the PPG and CUP2 baselines (§7.2's misleading counterexamples)."""

import pytest

from repro.automaton import build_lalr
from repro.baselines import CUP2Baseline, PPGBaseline


@pytest.fixture
def auto(figure1):
    return build_lalr(figure1)


def conflict_on(auto, terminal_name):
    return next(c for c in auto.conflicts if str(c.terminal) == terminal_name)


class TestPPGBaseline:
    def test_dangling_else_is_misleading(self, auto):
        """§7.2: prior PPG reports 'if expr then stmt •' for the dangling
        else, which is invalid — at that point the reduction cannot be
        followed by ELSE."""
        ppg = PPGBaseline(auto)
        example = ppg.counterexample(conflict_on(auto, "ELSE"))
        assert [str(s) for s in example.prefix] == ["IF", "expr", "THEN", "stmt"]
        assert not ppg.is_valid(example)

    def test_challenging_conflict_is_misleading(self, auto):
        ppg = PPGBaseline(auto)
        example = ppg.counterexample(conflict_on(auto, "DIGIT"))
        assert not ppg.is_valid(example)

    def test_plus_conflict_is_valid(self, auto):
        # For the + conflict the naive path happens to be correct.
        ppg = PPGBaseline(auto)
        example = ppg.counterexample(conflict_on(auto, "+"))
        assert ppg.is_valid(example)

    def test_misleading_conflicts_list(self, auto):
        ppg = PPGBaseline(auto)
        misleading = ppg.misleading_conflicts()
        assert {str(c.terminal) for c in misleading} == {"ELSE", "DIGIT"}

    def test_misleading_detected_across_corpus(self):
        """Several corpus grammars expose misleading PPG prefixes (the
        paper lists ten; our reconstructed corpus exposes them on
        figure1, simp2, and the larger language variants). The validity
        criterion (prefix shorter than the lookahead-sensitive minimum)
        is necessary but not sufficient, so this is a lower bound."""
        from repro.corpus import load as load_corpus

        misleading_names = []
        for name in ("figure1", "simp2", "Java.1"):
            automaton = build_lalr(load_corpus(name))
            if PPGBaseline(automaton).misleading_conflicts():
                misleading_names.append(name)
        assert misleading_names == ["figure1", "simp2", "Java.1"]

    def test_display(self, auto):
        ppg = PPGBaseline(auto)
        text = ppg.counterexample(conflict_on(auto, "ELSE")).display()
        assert text.endswith("•")


class TestCUP2Baseline:
    def test_shortest_state_path(self, auto):
        cup2 = CUP2Baseline(auto)
        report = cup2.report(conflict_on(auto, "ELSE"))
        assert report.states[0] == 0
        assert report.states[-1] == conflict_on(auto, "ELSE").state_id
        assert [str(s) for s in report.symbols] == ["IF", "expr", "THEN", "stmt"]

    def test_path_follows_transitions(self, auto):
        cup2 = CUP2Baseline(auto)
        for conflict in auto.conflicts:
            report = cup2.report(conflict)
            for (before, after), symbol in zip(
                zip(report.states, report.states[1:]), report.symbols
            ):
                assert auto.states[before].transitions[symbol].id == after

    def test_display(self, auto):
        cup2 = CUP2Baseline(auto)
        assert "shortest path" in cup2.report(auto.conflicts[0]).display()
