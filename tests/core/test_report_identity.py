"""Byte-identity of reports across the hot-path representations.

The LASG/bitset/serialization overhaul is pure representation change: a
finder running on bitmask lookaheads, array adjacency, and the lazy
conflict-scoped LASG must produce *byte-identical* reports to the
original frozenset/dict formulation. The golden-counterexample tests pin
the absolute strings (they predate the overhaul); these tests pin the
cross-implementation invariants on a corpus slice:

* serial vs parallel explanation renders identically;
* a format-v2 round-tripped automaton drives the finder to the same
  reports as a freshly built one;
* lookahead views render exactly like the frozensets they replace.
"""

import pytest

from repro.automaton import build_lalr
from repro.automaton.serialize import dump_automaton, load_automaton
from repro.core import CounterexampleFinder
from repro.core.report import safe_format_report
from repro.corpus import get
from repro.perf.parallel import explain_all_parallel

# Small enough to keep the matrix fast, broad enough to cover every
# counterexample shape: unifying, nonunifying, shift/reduce and
# reduce/reduce, timeout fallbacks on the real-language rows.
IDENTITY_GRAMMARS = ["figure1", "figure3", "figure7", "abcd", "SQL.1"]


def _reports(summary):
    return [safe_format_report(report) for report in summary.reports]


@pytest.mark.parametrize("name", IDENTITY_GRAMMARS)
def test_serial_and_parallel_reports_identical(name):
    grammar = get(name).load()
    serial = CounterexampleFinder(build_lalr(grammar)).explain_all()
    parallel = explain_all_parallel(grammar, jobs=2)
    assert _reports(serial) == _reports(parallel)


@pytest.mark.parametrize("name", IDENTITY_GRAMMARS)
def test_v2_round_tripped_automaton_reports_identical(name):
    grammar = get(name).load()
    automaton = build_lalr(grammar)
    _ = automaton.tables
    loaded = load_automaton(dump_automaton(automaton))
    fresh = CounterexampleFinder(automaton).explain_all()
    decoded = CounterexampleFinder(loaded).explain_all()
    assert _reports(fresh) == _reports(decoded)


def test_lookahead_views_render_like_frozensets():
    """Anything formatting a lookahead set (sorted, joined, str()-ed per
    terminal) sees the same sequence from a view as from a frozenset."""
    automaton = build_lalr(get("figure1").load())
    for view in automaton.lookaheads.values():
        reference = frozenset(view)
        assert sorted(str(t) for t in view) == sorted(
            str(t) for t in reference
        )
        assert ", ".join(t.name for t in sorted(view, key=str)) == ", ".join(
            t.name for t in sorted(reference, key=str)
        )
