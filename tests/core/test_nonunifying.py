"""Tests for nonunifying counterexample construction (§4)."""

import pytest

from repro.automaton import build_lalr
from repro.core import DOT, NonunifyingBuilder, format_symbols
from repro.grammar import Nonterminal, Terminal, load_grammar
from repro.parsing import EarleyParser


def conflict_on(auto, terminal_name):
    return next(c for c in auto.conflicts if str(c.terminal) == terminal_name)


def yields_of(counterexample):
    return (
        format_symbols(counterexample.example1()),
        format_symbols(counterexample.example2()),
    )


class TestDanglingElse:
    def test_both_sides_match_paper(self, figure1):
        auto = build_lalr(figure1)
        builder = NonunifyingBuilder(auto)
        example = builder.build(conflict_on(auto, "ELSE"))
        side1, side2 = yields_of(example)
        assert side1 == "IF expr THEN IF expr THEN stmt • ELSE stmt"
        assert side2 == "IF expr THEN IF expr THEN stmt • ELSE stmt"
        # Same string, but the derivations differ (that is the conflict).
        assert example.derivation1 != example.derivation2

    def test_derivations_use_distinct_items(self, figure1):
        auto = build_lalr(figure1)
        example = NonunifyingBuilder(auto).build(conflict_on(auto, "ELSE"))
        # Reduce side associates the ELSE with the outer IF.
        assert "stmt ::= [IF expr THEN stmt •]" in example.derivation1.render()
        assert "stmt ::= [IF expr THEN stmt • ELSE stmt]" in example.derivation2.render()


class TestChallengingConflict:
    def test_reduce_side_matches_paper(self, figure1):
        """§4's worked example: prefix expr ? arr [ expr ] := num followed
        by a statement starting with DIGIT."""
        auto = build_lalr(figure1)
        example = NonunifyingBuilder(auto).build(conflict_on(auto, "DIGIT"))
        side1, _ = yields_of(example)
        assert side1 == "expr ? arr [ expr ] := num • DIGIT ? stmt stmt"

    def test_conflict_terminal_follows_dot_on_both_sides(self, figure1):
        auto = build_lalr(figure1)
        for conflict in auto.conflicts:
            example = NonunifyingBuilder(auto).build(conflict)
            for side in (example.example1(), example.example2()):
                position = side.index(DOT)
                assert position + 1 < len(side)
                assert side[position + 1] == conflict.terminal


class TestValidity:
    """Every nonunifying side must be a real derivation of the grammar."""

    @pytest.mark.parametrize("terminal", ["ELSE", "DIGIT", "+"])
    def test_figure1_sides_derivable(self, figure1, terminal):
        auto = build_lalr(figure1)
        example = NonunifyingBuilder(auto).build(conflict_on(auto, terminal))
        earley = EarleyParser(figure1)
        for derivation in (example.derivation1, example.derivation2):
            tree = derivation.to_parse_tree()
            # Structural check: dnode() validated productions; confirm the
            # yield is derivable from the start symbol.
            symbols = [
                s
                for s in tree.leaf_symbols()
                if str(s) != "$"
            ]
            assert earley.recognizes(figure1.start, symbols), (
                f"{format_symbols(symbols)} not derivable"
            )

    def test_figure3_sides(self, figure3):
        auto = build_lalr(figure3)
        example = NonunifyingBuilder(auto).build(auto.conflicts[0])
        side1, side2 = yields_of(example)
        # Reduce side: X -> a . completed with lookahead a.
        assert side1.startswith("a •")
        # Shift side: Y -> a . a b.
        assert side2 == "a • a b"
        earley = EarleyParser(figure3)
        for derivation in (example.derivation1, example.derivation2):
            symbols = [s for s in derivation.yield_symbols(keep_dot=False)
                       if str(s) != "$"]
            assert earley.recognizes(figure3.start, symbols)

    def test_common_prefix_property(self, figure1, figure3):
        for grammar in (figure1, figure3):
            auto = build_lalr(grammar)
            builder = NonunifyingBuilder(auto)
            for conflict in auto.conflicts:
                example = builder.build(conflict)
                prefix = example.prefix()
                other = example.example2()
                assert other[: len(prefix)] == prefix


class TestReduceReduce:
    def test_rr_conflict_sides(self):
        grammar = load_grammar("s : a 'x' | b 'x' ; a : 'q' ; b : 'q' ;")
        auto = build_lalr(grammar)
        example = NonunifyingBuilder(auto).build(auto.conflicts[0])
        side1, side2 = yields_of(example)
        assert side1 == "q • x"
        assert side2 == "q • x"
        assert "a ::=" in example.derivation1.render()
        assert "b ::=" in example.derivation2.render()


class TestEpsilonCompletions:
    def test_nullable_symbols_derived_to_epsilon(self):
        # The conflict terminal sits after a nullable nonterminal, which
        # must be expanded to epsilon during completion.
        grammar = load_grammar(
            """
            s : a opt 'z' | 'q' ;
            a : 'q' | 'q' 'w' ;
            opt : 'w' | %empty ;
            """
        )
        auto = build_lalr(grammar)
        assert auto.conflicts
        builder = NonunifyingBuilder(auto)
        for conflict in auto.conflicts:
            example = builder.build(conflict)
            assert example.example1()  # construction succeeded
