"""Tests for the Counterexample result type."""

import pytest

from repro.automaton import build_lalr
from repro.core import CounterexampleFinder, DOT, format_symbols


@pytest.fixture
def reports(figure1):
    finder = CounterexampleFinder(figure1, time_limit=10.0)
    return {str(r.conflict.terminal): r for r in finder.explain_all().reports}


class TestAccessors:
    def test_example_symbols_strip_dot(self, reports):
        example = reports["ELSE"].counterexample
        with_dot = example.example1()
        without = example.example1_symbols()
        assert DOT in with_dot
        assert DOT not in without
        assert len(without) == len(with_dot) - 1

    def test_prefix_stops_at_dot(self, reports):
        example = reports["ELSE"].counterexample
        prefix = example.prefix()
        assert [str(s) for s in prefix] == [
            "IF", "expr", "THEN", "IF", "expr", "THEN", "stmt",
        ]

    def test_unifying_yields_match(self, reports):
        for report in reports.values():
            example = report.counterexample
            if example.unifying:
                assert example.example1() == example.example2()

    def test_describe_unifying(self, reports):
        text = reports["+"].counterexample.describe()
        assert "Ambiguity detected" in text
        assert "Derivation using reduction" in text

    def test_describe_nonunifying(self, figure3):
        finder = CounterexampleFinder(figure3, time_limit=5.0)
        example = finder.explain_all().reports[0].counterexample
        text = example.describe()
        assert "Example using reduction" in text
        assert "Example using shift" in text

    def test_str_shows_kind(self, reports):
        assert "unifying" in str(reports["+"].counterexample)

    def test_search_cost_recorded(self, reports):
        assert reports["+"].counterexample.search_cost > 0
