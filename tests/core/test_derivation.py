"""Tests for counterexample derivation trees."""

import pytest

from repro.core import DOT, Derivation, dleaf, dnode, format_symbols
from repro.grammar import END_OF_INPUT, Nonterminal, Terminal, load_grammar


@pytest.fixture
def plus_production(ambiguous_expr):
    return next(p for p in ambiguous_expr.user_productions() if len(p.rhs) == 3
                and str(p.rhs[1]) == "+")


class TestConstruction:
    def test_leaf(self):
        leaf = dleaf(Terminal("x"))
        assert leaf.is_leaf and not leaf.is_dot
        assert leaf.yield_symbols() == (Terminal("x"),)

    def test_dot_marker(self):
        assert DOT.is_dot
        assert not DOT.is_leaf
        assert DOT.yield_symbols() == (DOT,)
        assert DOT.size() == 0

    def test_node_validates_arity(self, plus_production):
        with pytest.raises(ValueError):
            dnode(plus_production, [dleaf(Nonterminal("e"))])

    def test_node_validates_symbols(self, plus_production):
        with pytest.raises(ValueError):
            dnode(
                plus_production,
                [dleaf(Terminal("x")), dleaf(Terminal("+")), dleaf(Nonterminal("e"))],
            )

    def test_node_allows_dot_anywhere(self, plus_production):
        e, plus = Nonterminal("e"), Terminal("+")
        node = dnode(plus_production, [dleaf(e), DOT, dleaf(plus), dleaf(e)])
        assert node.yield_symbols() == (e, DOT, plus, e)

    def test_yield_without_dot(self, plus_production):
        e, plus = Nonterminal("e"), Terminal("+")
        node = dnode(plus_production, [dleaf(e), DOT, dleaf(plus), dleaf(e)])
        assert node.yield_symbols(keep_dot=False) == (e, plus, e)


class TestRendering:
    def test_figure11_format(self, ambiguous_expr, plus_production):
        e, plus = Nonterminal("e"), Terminal("+")
        inner = dnode(
            plus_production, [dleaf(e), dleaf(plus), dleaf(e), DOT]
        )
        outer = dnode(plus_production, [inner, dleaf(plus), dleaf(e)])
        assert outer.render() == "e ::= [e ::= [e + e •] + e]"

    def test_format_symbols_hides_eof(self):
        text = format_symbols((Terminal("a"), END_OF_INPUT, DOT))
        assert text == "a •"

    def test_format_symbols_keeps_eof_when_asked(self):
        text = format_symbols((Terminal("a"), END_OF_INPUT), hide_eof=False)
        assert text == "a $"


class TestConversion:
    def test_to_parse_tree_drops_dot(self, plus_production):
        e, plus = Nonterminal("e"), Terminal("+")
        node = dnode(plus_production, [dleaf(e), DOT, dleaf(plus), dleaf(e)])
        tree = node.to_parse_tree()
        assert tree.leaf_symbols() == (e, plus, e)
        assert tree.production is plus_production

    def test_dot_alone_has_no_tree(self):
        with pytest.raises(ValueError):
            DOT.to_parse_tree()

    def test_size_counts_non_dot_nodes(self, plus_production):
        e, plus = Nonterminal("e"), Terminal("+")
        node = dnode(plus_production, [dleaf(e), DOT, dleaf(plus), dleaf(e)])
        assert node.size() == 4
