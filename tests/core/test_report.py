"""Golden tests for the Figure 11 report format."""

import pytest

from repro.core import CounterexampleFinder, format_report
from repro.grammar import load_grammar

#: The §2.4 conflict whose report the paper's Figure 11 shows (modulo
#: CUP's token naming: the paper's grammar spells the operator PLUS).
FIGURE11_GRAMMAR = """
%grammar figure11
%start expr
expr : expr PLUS expr | num ;
num : DIGIT | num DIGIT ;
"""

EXPECTED_FRAGMENTS = [
    "Shift/Reduce conflict found in state #",
    "between reduction on expr ::= expr PLUS expr •",
    "and shift on expr ::= expr • PLUS expr",
    "under symbol PLUS",
    "Ambiguity detected for nonterminal expr",
    "Example: expr PLUS expr • PLUS expr",
    "Derivation using reduction:",
    "expr ::= [expr ::= [expr PLUS expr •] PLUS expr]",
    "Derivation using shift:",
    "expr ::= [expr PLUS expr ::= [expr • PLUS expr]]",
]


class TestFigure11:
    def test_report_matches_paper(self):
        grammar = load_grammar(FIGURE11_GRAMMAR)
        finder = CounterexampleFinder(grammar, time_limit=10.0)
        reports = [
            format_report(report)
            for report in finder.explain_all().reports
            if str(report.conflict.terminal) == "PLUS"
        ]
        assert reports, "expected the PLUS conflict"
        text = reports[0]
        for fragment in EXPECTED_FRAGMENTS:
            assert fragment in text, f"missing: {fragment}\nin:\n{text}"

    def test_nonunifying_report_shape(self, figure3):
        finder = CounterexampleFinder(figure3, time_limit=5.0)
        text = format_report(finder.explain_all().reports[0])
        assert "Example using reduction:" in text
        assert "Example using shift:" in text
        assert "Derivation using reduction:" in text
        assert text.count("•") >= 4  # two examples + two derivations

    def test_timeout_note_present(self):
        # A grammar whose restricted search neither succeeds nor exhausts
        # quickly; with a zero budget it reports a timeout.
        grammar = load_grammar("s : 'a' s 'a' | %empty ;")
        finder = CounterexampleFinder(grammar, time_limit=0.0)
        report = finder.explain_all().reports[0]
        if report.timed_out:
            assert "time limit" in format_report(report)
        else:
            # On very fast machines the bounded space may exhaust first;
            # either way the counterexample must be nonunifying.
            assert not report.counterexample.unifying

    def test_reduce_reduce_labels(self):
        grammar = load_grammar("s : a | b ; a : 'q' ; b : 'q' ;")
        finder = CounterexampleFinder(grammar, time_limit=5.0)
        text = format_report(finder.explain_all().reports[0])
        assert "Reduce/Reduce conflict" in text
        assert "second reduction" in text
