"""Tests for search configurations and successor moves (Figure 10)."""

import pytest

from repro.automaton import build_lalr
from repro.core import DOT, SuccessorGenerator, initial_configuration
from repro.grammar import Terminal


@pytest.fixture
def setup(figure1):
    auto = build_lalr(figure1)
    conflict = next(c for c in auto.conflicts if str(c.terminal) == "ELSE")
    return auto, conflict, SuccessorGenerator(auto, conflict)


def successors_by_label(generator, config):
    result = {}
    for label, cost, successor in generator.successors(config):
        result.setdefault(label, []).append((cost, successor))
    return result


class TestInitialConfiguration:
    def test_figure8b_form(self, setup):
        _, conflict, _ = setup
        config = initial_configuration(conflict)
        assert config.items1 == ((conflict.state_id, conflict.reduce_item),)
        assert config.items2 == ((conflict.state_id, conflict.other_item),)
        assert config.derivs1 == (DOT,)
        assert config.derivs2 == (DOT,)
        assert not config.complete1 and not config.complete2
        assert not config.shifted

    def test_heads_share_state(self, setup):
        _, conflict, _ = setup
        config = initial_configuration(conflict)
        assert config.items1[0][0] == config.items2[0][0]


class TestInvariants:
    """Structural invariants hold across arbitrary successor applications."""

    def explore(self, generator, config, depth):
        yield config
        if depth == 0:
            return
        for _, _, successor in generator.successors(config):
            yield from self.explore(generator, successor, depth - 1)

    def test_heads_always_share_state(self, setup):
        _, conflict, generator = setup
        for config in self.explore(generator, initial_configuration(conflict), 3):
            assert config.items1[0][0] == config.items2[0][0]

    def test_yields_always_identical(self, setup):
        """The two derivation lists must spell the same yield (with dot)."""
        _, conflict, generator = setup

        def flat(derivs):
            out = []
            for d in derivs:
                out.extend(d.yield_symbols())
            return out

        for config in self.explore(generator, initial_configuration(conflict), 3):
            # Parser 2's shift item carries symbols after its dot that
            # parser 1 will only produce later, so compare prefixes up to
            # the dot only.
            yield1, yield2 = flat(config.derivs1), flat(config.derivs2)
            dot1, dot2 = yield1.index(DOT), yield2.index(DOT)
            assert yield1[:dot1] == yield2[:dot2]

    def test_exactly_one_dot_until_absorbed(self, setup):
        _, conflict, generator = setup
        for config in self.explore(generator, initial_configuration(conflict), 3):
            top_level_dots1 = sum(1 for d in config.derivs1 if d.is_dot)
            expected1 = 0 if config.complete1 else 1
            assert top_level_dots1 == expected1

    def test_item_sequences_are_connected_paths(self, setup):
        """Consecutive state-items are linked by a transition or a
        production step of the parser."""
        auto, conflict, generator = setup
        for config in self.explore(generator, initial_configuration(conflict), 3):
            for items in (config.items1, config.items2):
                for (s1, i1), (s2, i2) in zip(items, items[1:]):
                    if s1 == s2 and i2.at_start:
                        assert i1.next_symbol == i2.production.lhs
                    else:
                        assert i2 == i1.advance()
                        symbol = i2.previous_symbol
                        assert auto.states[s1].transitions[symbol].id == s2


class TestReverseTransition:
    def test_initial_successors_are_reverse_transitions(self, setup):
        _, conflict, generator = setup
        moves = successors_by_label(generator, initial_configuration(conflict))
        assert set(moves) == {"revtransition"}
        for _, successor in moves["revtransition"]:
            # One symbol (stmt) prepended to both derivation lists.
            assert len(successor.derivs1) == 2
            assert successor.derivs1[0].symbol == successor.derivs2[0].symbol

    def test_reverse_transition_respects_lookahead_constraint(self, figure1):
        """While stage 1 is incomplete, the prepended reduce-side item must
        keep the conflict terminal in its lookahead set."""
        auto = build_lalr(figure1)
        conflict = next(c for c in auto.conflicts if str(c.terminal) == "ELSE")
        generator = SuccessorGenerator(auto, conflict)
        config = initial_configuration(conflict)
        for label, _, successor in generator.successors(config):
            if label != "revtransition":
                continue
            state_id, item = successor.items1[0]
            assert conflict.terminal in auto.lookahead(state_id, item)


class TestReduction:
    def drive_to_reduction(self, generator, config, parser):
        """Breadth-first search for the first configuration produced by a
        reduction on *parser*."""
        frontier = [config]
        for _ in range(6):
            next_frontier = []
            for current in frontier:
                for label, _, successor in generator.successors(current):
                    if label == f"reduce{parser}":
                        return successor
                    next_frontier.append(successor)
            frontier = next_frontier
        raise AssertionError("no reduction found")

    def test_stage1_reduction_absorbs_dot(self, setup):
        _, conflict, generator = setup
        reduced = self.drive_to_reduction(
            generator, initial_configuration(conflict), 1
        )
        assert reduced.complete1
        node = reduced.derivs1[-1]
        assert node.production is conflict.reduce_item.production
        assert any(child.is_dot for child in node.children)

    def test_reduction_shrinks_items_and_moves_to_goto(self, setup):
        auto, conflict, generator = setup
        reduced = self.drive_to_reduction(
            generator, initial_configuration(conflict), 1
        )
        state_id, item = reduced.items1[-1]
        assert item.previous_symbol == conflict.reduce_item.production.lhs
