"""Tests for the unifying-counterexample search (§5)."""

import pytest

from repro.automaton import build_lalr
from repro.core import (
    DOT,
    LookaheadSensitiveGraph,
    UnifyingSearch,
    format_symbols,
    path_states,
)
from repro.grammar import Nonterminal, load_grammar
from repro.parsing import EarleyParser


def search_conflict(grammar, terminal_name=None, extended=False, time_limit=10.0):
    auto = build_lalr(grammar)
    if terminal_name is None:
        conflict = auto.conflicts[0]
    else:
        conflict = next(c for c in auto.conflicts if str(c.terminal) == terminal_name)
    graph = LookaheadSensitiveGraph(auto)
    allowed = None if extended else path_states(graph.shortest_path(conflict))
    search = UnifyingSearch(
        auto, conflict, allowed_prepend_states=allowed, time_limit=time_limit
    )
    return search.run(), auto


class TestPaperExamples:
    def test_dangling_else(self, figure1):
        result, _ = search_conflict(figure1, "ELSE")
        assert result.succeeded
        example = result.counterexample
        assert (
            format_symbols(example.example1())
            == "IF expr THEN IF expr THEN stmt • ELSE stmt"
        )
        assert str(example.nonterminal) == "stmt"

    def test_plus_associativity(self, figure1):
        result, _ = search_conflict(figure1, "+")
        assert result.succeeded
        example = result.counterexample
        assert format_symbols(example.example1()) == "expr + expr • + expr"
        assert str(example.nonterminal) == "expr"
        # Figure 11's derivations, verbatim.
        assert example.derivation1.render() == "expr ::= [expr ::= [expr + expr •] + expr]"
        assert example.derivation2.render() == "expr ::= [expr + expr ::= [expr • + expr]]"

    def test_challenging_conflict(self, figure1):
        """§3.1/§5.2 Stage 4: the digit/digit unifying counterexample."""
        result, _ = search_conflict(figure1, "DIGIT")
        assert result.succeeded
        example = result.counterexample
        assert (
            format_symbols(example.example1())
            == "expr ? arr [ expr ] := num • DIGIT DIGIT ? stmt stmt"
        )
        assert str(example.nonterminal) == "stmt"

    def test_figure7_both_conflicts(self, figure7):
        auto = build_lalr(figure7)
        graph = LookaheadSensitiveGraph(auto)
        examples = []
        for conflict in auto.conflicts:
            allowed = path_states(graph.shortest_path(conflict))
            result = UnifyingSearch(
                auto, conflict, allowed_prepend_states=allowed, time_limit=10.0
            ).run()
            assert result.succeeded
            examples.append(format_symbols(result.counterexample.example1()))
        assert "n a • b c" in examples
        # §5.2: the second shift item needs the longer prefix n n.
        assert any(e.startswith("n n a • b d") for e in examples)


class TestSearchProperties:
    def test_unifying_yields_agree(self, figure1):
        for terminal in ("ELSE", "+", "DIGIT"):
            result, _ = search_conflict(figure1, terminal)
            example = result.counterexample
            assert example.example1() == example.example2()

    def test_derivations_differ(self, figure1):
        for terminal in ("ELSE", "+", "DIGIT"):
            result, _ = search_conflict(figure1, terminal)
            example = result.counterexample
            assert example.derivation1 != example.derivation2

    def test_conflict_terminal_after_dot(self, figure1):
        for terminal_name in ("ELSE", "+", "DIGIT"):
            result, _ = search_conflict(figure1, terminal_name)
            symbols = result.counterexample.example1()
            position = symbols.index(DOT)
            assert str(symbols[position + 1]) == terminal_name

    def test_examples_verified_ambiguous_by_earley(self, figure1):
        earley = EarleyParser(figure1)
        for terminal in ("ELSE", "+", "DIGIT"):
            result, _ = search_conflict(figure1, terminal)
            example = result.counterexample
            form = example.example1_symbols()
            assert earley.is_ambiguous_form(example.nonterminal, form)

    def test_stats_populated(self, figure1):
        result, _ = search_conflict(figure1, "ELSE")
        assert result.stats.explored > 0
        assert result.stats.enqueued > 0


class TestUnambiguousGrammars:
    def test_figure3_restricted_search_fails(self, figure3):
        result, _ = search_conflict(figure3, time_limit=20.0)
        assert not result.succeeded

    def test_lr2_reduce_reduce_grammar(self):
        # Unambiguous but needs two tokens of lookahead: after 'k' with
        # lookahead 'x', reducing to t or u depends on the symbol after x.
        grammar = load_grammar(
            "s : t 'x' 'p' | u 'x' 'q' ; t : 'k' ; u : 'k' ;"
        )
        auto = build_lalr(grammar)
        assert auto.conflicts, "expected a reduce/reduce conflict"
        result, _ = search_conflict(grammar, time_limit=10.0)
        assert not result.succeeded


class TestBudgets:
    def test_time_limit_respected(self, figure3):
        import time

        started = time.monotonic()
        result, _ = search_conflict(figure3, time_limit=0.3)
        elapsed = time.monotonic() - started
        assert not result.succeeded
        assert elapsed < 5.0

    def test_max_configurations(self, figure1):
        auto = build_lalr(figure1)
        conflict = next(c for c in auto.conflicts if str(c.terminal) == "DIGIT")
        search = UnifyingSearch(auto, conflict, max_configurations=10)
        result = search.run()
        assert not result.succeeded
        assert result.stats.timed_out

    def test_max_cost_reports_exhausted(self, figure3):
        auto = build_lalr(figure3)
        conflict = auto.conflicts[0]
        graph = LookaheadSensitiveGraph(auto)
        allowed = path_states(graph.shortest_path(conflict))
        search = UnifyingSearch(
            auto,
            conflict,
            allowed_prepend_states=allowed,
            time_limit=30.0,
            max_cost=500.0,
        )
        result = search.run()
        assert not result.succeeded
        assert result.stats.exhausted
        assert not result.stats.timed_out


class TestExtendedSearch:
    def test_extended_finds_figure1_examples_too(self, figure1):
        for terminal in ("ELSE", "+"):
            result, _ = search_conflict(figure1, terminal, extended=True)
            assert result.succeeded


class TestAdaptiveDeadline:
    """Regression tests for the ``% 256`` polling bug: the deadline is
    now re-checked on the *first* iteration and at an adaptive cadence."""

    def test_zero_deadline_noticed_on_first_iteration(self, figure3):
        from repro.robust import Budget

        auto = build_lalr(figure3)
        search = UnifyingSearch(
            auto, auto.conflicts[0], budget=Budget(time_limit=0.0)
        )
        result = search.run()
        assert not result.succeeded
        assert result.stats.timed_out
        assert result.stats.stopped_reason == "timeout"
        # The old fixed-256 cadence would have explored 256 configurations
        # before noticing; the adaptive ticker fires on iteration one.
        assert result.stats.explored == 1

    def test_configuration_cap_reports_budget_reason(self, figure3):
        from repro.robust import Budget

        auto = build_lalr(figure3)
        search = UnifyingSearch(
            auto, auto.conflicts[0], budget=Budget(time_limit=30.0, max_nodes=5)
        )
        result = search.run()
        assert not result.succeeded
        assert result.stats.timed_out  # historical Table 1 accounting
        assert result.stats.stopped_reason == "budget"
        assert result.stats.explored == 6  # cap + the poll that noticed

    def test_cancellation_propagates_out_of_the_search(self, figure3):
        from repro.robust import Budget, Cancelled, CancellationToken

        auto = build_lalr(figure3)
        token = CancellationToken()
        token.cancel("stop everything")
        search = UnifyingSearch(
            auto, auto.conflicts[0], budget=Budget(token=token)
        )
        with pytest.raises(Cancelled):
            search.run()
