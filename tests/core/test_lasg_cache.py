"""Tests for the lazy LASG's successor memo and materialization counters.

The lookahead-sensitive graph is never built whole: vertices materialize
on demand during the shortest-path search, and the expanded successor
lists are memoized in a bounded LRU shared by every conflict explained
through the same graph instance (the finder keeps one per automaton).
"""

import pytest

from repro.automaton import build_lalr
from repro.core import CounterexampleFinder
from repro.core.lasg import LookaheadSensitiveGraph
from repro.perf import metrics


@pytest.fixture
def conflicted(figure1):
    automaton = build_lalr(figure1)
    assert automaton.conflicts
    return automaton


class TestSuccessorCache:
    def test_cache_populates_and_is_shared_across_conflicts(self, conflicted):
        graph = LookaheadSensitiveGraph(conflicted)
        info = graph.cache_info()
        assert info["entries"] == 0 and info["hits"] == 0

        for conflict in conflicted.conflicts:
            graph.shortest_path(conflict)
        after_first = graph.cache_info()
        assert after_first["entries"] > 0
        assert after_first["misses"] > 0

        # Re-explaining the same conflicts reuses the memo: only hits grow.
        for conflict in conflicted.conflicts:
            graph.shortest_path(conflict)
        after_second = graph.cache_info()
        assert after_second["misses"] == after_first["misses"]
        assert after_second["hits"] > after_first["hits"]

    def test_cache_is_bounded_with_lru_eviction(self, conflicted):
        graph = LookaheadSensitiveGraph(conflicted, max_cache_entries=16)
        for conflict in conflicted.conflicts:
            graph.shortest_path(conflict)
        info = graph.cache_info()
        assert info["max_entries"] == 16
        assert info["entries"] <= 16
        assert info["evictions"] > 0

    def test_bounded_cache_returns_same_paths(self, conflicted):
        unbounded = LookaheadSensitiveGraph(conflicted)
        tiny = LookaheadSensitiveGraph(conflicted, max_cache_entries=4)
        for conflict in conflicted.conflicts:
            a = unbounded.shortest_path(conflict)
            b = tiny.shortest_path(conflict)
            assert [str(edge) for edge in a] == [str(edge) for edge in b]

    def test_clear_successor_cache(self, conflicted):
        graph = LookaheadSensitiveGraph(conflicted)
        graph.shortest_path(conflicted.conflicts[0])
        assert graph.cache_info()["entries"] > 0
        graph.clear_successor_cache()
        assert graph.cache_info()["entries"] == 0


class TestMaterializationCounters:
    def test_materialized_is_a_fraction_of_the_estimate(self, conflicted):
        with metrics.collecting() as collector:
            graph = LookaheadSensitiveGraph(conflicted)
            for conflict in conflicted.conflicts:
                graph.shortest_path(conflict)
        materialized = collector.counters["lasg.vertices.materialized"]
        estimated = collector.counters["lasg.vertices.estimated_full"]
        assert 0 < materialized < estimated

    def test_successor_cache_counters_mirrored_to_metrics(self, conflicted):
        with metrics.collecting() as collector:
            graph = LookaheadSensitiveGraph(conflicted)
            for conflict in conflicted.conflicts:
                graph.shortest_path(conflict)
                graph.shortest_path(conflict)
        assert collector.counters["lasg.successors.miss"] > 0
        assert collector.counters["lasg.successors.hit"] > 0


class TestFinderScoping:
    def test_finder_shares_one_graph_with_the_nonunifying_builder(
        self, conflicted
    ):
        finder = CounterexampleFinder(conflicted)
        assert finder.nonunifying.graph is finder.graph

    def test_two_finders_do_not_share_memo_state(self, figure1):
        a = CounterexampleFinder(build_lalr(figure1))
        b = CounterexampleFinder(build_lalr(figure1))
        assert a.graph is not b.graph
