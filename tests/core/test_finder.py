"""Tests for the top-level finder and its §6 time policy."""

import pytest

from repro.automaton import build_lalr
from repro.core import CounterexampleFinder, explain_conflicts, format_symbols
from repro.grammar import load_grammar
from repro.parsing import EarleyParser


class TestExplainAll:
    def test_figure1_all_unifying(self, figure1):
        summary = CounterexampleFinder(figure1, time_limit=10.0).explain_all()
        assert summary.num_conflicts == 3
        assert summary.num_unifying == 3
        assert summary.num_nonunifying == 0
        assert summary.num_timeout == 0

    def test_figure3_nonunifying_without_timeout(self, figure3):
        """The paper reports figure3 as '# nonunif = 1': the restricted
        search exhausts and determines no unifying counterexample exists."""
        summary = CounterexampleFinder(figure3, time_limit=10.0).explain_all()
        assert summary.num_conflicts == 1
        assert summary.num_unifying == 0
        assert summary.num_nonunifying == 1
        assert summary.num_timeout == 0
        report = summary.reports[0]
        assert report.stats is not None and report.stats.exhausted

    def test_figure7_all_unifying(self, figure7):
        summary = CounterexampleFinder(figure7, time_limit=10.0).explain_all()
        assert summary.num_conflicts == 2
        assert summary.num_unifying == 2

    def test_conflict_free_grammar(self, expr_grammar):
        summary = CounterexampleFinder(expr_grammar).explain_all()
        assert summary.num_conflicts == 0
        assert summary.reports == []

    def test_average_time(self, figure1):
        summary = CounterexampleFinder(figure1, time_limit=10.0).explain_all()
        assert summary.total_time > 0
        assert summary.average_time == pytest.approx(
            summary.total_time / summary.num_conflicts
        )


class TestVerification:
    def test_unifying_examples_verified(self, figure1):
        finder = CounterexampleFinder(figure1, time_limit=10.0, verify=True)
        for report in finder.explain_all().reports:
            if report.counterexample.unifying:
                assert report.verified is True

    def test_verify_can_be_disabled(self, figure1):
        finder = CounterexampleFinder(figure1, time_limit=10.0, verify=False)
        for report in finder.explain_all().reports:
            assert report.verified is None


class TestBudgetPolicy:
    def test_per_conflict_time_limit_falls_back(self, figure3):
        finder = CounterexampleFinder(figure3, time_limit=0.2)
        report = finder.explain(finder.conflicts[0])
        assert not report.counterexample.unifying

    def test_cumulative_budget_switches_to_nonunifying(self, figure1):
        # A zero cumulative budget means no unifying searches at all.
        finder = CounterexampleFinder(figure1, cumulative_limit=0.0)
        summary = finder.explain_all()
        assert summary.num_unifying == 0
        assert summary.num_nonunifying == 3
        assert all(report.stats is None for report in summary.reports)

    def test_timed_out_flag_propagates(self):
        # An unambiguous grammar whose restricted search space is too big
        # to exhaust instantly; with a tiny limit it times out.
        grammar = load_grammar(
            "s : t 'x' 'p' | u 'x' 'q' ; t : 'k' ; u : 'k' ;"
        )
        finder = CounterexampleFinder(grammar, time_limit=0.0)
        report = finder.explain(finder.conflicts[0])
        assert not report.counterexample.unifying


class TestExplainConflictsWrapper:
    def test_formatted_reports(self, figure1):
        reports = explain_conflicts(figure1, time_limit=10.0)
        assert len(reports) == 3
        for text in reports:
            assert text.startswith("Warning : ***")

    def test_figure11_sample_message(self, figure1):
        """The paper's Figure 11 error message for the + conflict."""
        reports = explain_conflicts(figure1, time_limit=10.0)
        plus_report = next(r for r in reports if "under symbol +" in r)
        assert "between reduction on expr ::= expr + expr •" in plus_report
        assert "and shift on expr ::= expr • + expr" in plus_report
        assert "Ambiguity detected for nonterminal expr" in plus_report
        assert "Example: expr + expr • + expr" in plus_report
        assert "expr ::= [expr ::= [expr + expr •] + expr]" in plus_report
        assert "expr ::= [expr + expr ::= [expr • + expr]]" in plus_report


class TestReduceReduceConflicts:
    def test_rr_unifying(self):
        # Ambiguous reduce/reduce: two nonterminals derive the same string.
        grammar = load_grammar("s : a | b ; a : 'q' ; b : 'q' ;")
        summary = CounterexampleFinder(grammar, time_limit=10.0).explain_all()
        assert summary.num_conflicts == 1
        report = summary.reports[0]
        assert report.counterexample.unifying
        assert format_symbols(report.counterexample.example1()) == "q •"

    def test_rr_unambiguous(self):
        grammar = load_grammar(
            "s : t 'x' 'p' | u 'x' 'q' ; t : 'k' ; u : 'k' ;"
        )
        summary = CounterexampleFinder(grammar, time_limit=5.0).explain_all()
        report = summary.reports[0]
        assert not report.counterexample.unifying


class TestEpsilonConflicts:
    def test_nullable_ambiguity(self):
        # Two nullable nonterminals create an ambiguous epsilon conflict.
        grammar = load_grammar("s : a b 'z' ; a : 'w' | %empty ; b : 'w' | %empty ;")
        finder = CounterexampleFinder(grammar, time_limit=10.0)
        summary = finder.explain_all()
        assert summary.num_conflicts >= 1
        # w z can be parsed with w in a or in b.
        earley = EarleyParser(grammar)
        from repro.grammar import Nonterminal, Terminal

        assert earley.is_ambiguous_form(
            Nonterminal("s"), [Terminal("w"), Terminal("z")]
        )
        assert any(r.counterexample.unifying for r in summary.reports)
