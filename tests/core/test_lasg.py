"""Tests for the lookahead-sensitive graph and its shortest paths."""

import pytest

from repro.automaton import build_lalr
from repro.core import (
    LookaheadSensitiveGraph,
    path_prefix_symbols,
    path_states,
)
from repro.grammar import END_OF_INPUT, Terminal


@pytest.fixture
def auto(figure1):
    return build_lalr(figure1)


@pytest.fixture
def graph(auto):
    return LookaheadSensitiveGraph(auto)


def conflict_on(auto, terminal_name):
    return next(c for c in auto.conflicts if str(c.terminal) == terminal_name)


class TestStartVertex:
    def test_start_vertex(self, graph):
        vertex = graph.start_vertex
        assert vertex.state_id == 0
        assert vertex.lookahead == frozenset({END_OF_INPUT})
        assert vertex.item.at_start


class TestSuccessors:
    def test_transition_preserves_lookahead(self, graph):
        start = graph.start_vertex
        edges = list(graph.successors(start))
        transitions = [e for e in edges if not e.is_production_step]
        assert len(transitions) == 1  # on stmt
        assert transitions[0].target.lookahead == start.lookahead

    def test_production_steps_use_precise_follow(self, graph):
        start = graph.start_vertex
        # START' -> . stmt $: stepping into stmt productions, the precise
        # lookahead is FIRST($) = {$}.
        steps = [e for e in graph.successors(start) if e.is_production_step]
        assert len(steps) == 4  # four stmt productions
        for edge in steps:
            assert edge.target.lookahead == frozenset({END_OF_INPUT})

    def test_reduce_item_has_no_successors(self, graph, auto):
        conflict = conflict_on(auto, "ELSE")
        vertex_item = conflict.reduce_item
        from repro.core.lasg import LASGVertex

        vertex = LASGVertex(conflict.state_id, vertex_item, frozenset())
        assert list(graph.successors(vertex)) == []


class TestShortestPath:
    def test_dangling_else_path_matches_figure5(self, graph, auto):
        """The paper's Figure 5(a): the shortest lookahead-sensitive path
        to the dangling-else conflict has prefix
        IF expr THEN IF expr THEN stmt."""
        conflict = conflict_on(auto, "ELSE")
        path = graph.shortest_path(conflict)
        prefix = [str(s) for s in path_prefix_symbols(path)]
        assert prefix == ["IF", "expr", "THEN", "IF", "expr", "THEN", "stmt"]
        # Figure 5(a) shows exactly two [prod] steps: into the outer
        # if-else production at the start, and into the short if in state 9.
        production_steps = [e for e in path if e.is_production_step]
        assert len(production_steps) == 2

    def test_path_edges_are_connected(self, graph, auto):
        for conflict in auto.conflicts:
            path = graph.shortest_path(conflict)
            for before, after in zip(path, path[1:]):
                assert before.target == after.source

    def test_path_starts_at_start_vertex(self, graph, auto):
        path = graph.shortest_path(conflict_on(auto, "ELSE"))
        assert path[0].source == graph.start_vertex

    def test_path_ends_at_conflict_item_with_conflict_lookahead(self, graph, auto):
        for conflict in auto.conflicts:
            path = graph.shortest_path(conflict)
            final = path[-1].target
            assert final.state_id == conflict.state_id
            assert final.item == conflict.reduce_item
            assert conflict.terminal in final.lookahead

    def test_challenging_conflict_prefix(self, graph, auto):
        """§4: the shortest lookahead-sensitive path for the challenging
        conflict yields prefix 'expr ? arr [ expr ] := num'."""
        conflict = conflict_on(auto, "DIGIT")
        prefix = [str(s) for s in path_prefix_symbols(graph.shortest_path(conflict))]
        assert prefix == ["expr", "?", "arr", "[", "expr", "]", ":=", "num"]

    def test_lookahead_changes_only_on_production_steps(self, graph, auto):
        for conflict in auto.conflicts:
            for edge in graph.shortest_path(conflict):
                if not edge.is_production_step:
                    assert edge.source.lookahead == edge.target.lookahead

    def test_path_states_and_prefix_helpers(self, graph, auto):
        path = graph.shortest_path(conflict_on(auto, "ELSE"))
        states = path_states(path)
        assert 0 in states
        assert conflict_on(auto, "ELSE").state_id in states
        assert len(path_prefix_symbols(path)) == 7


class TestNaiveShortestPathWouldBeWrong:
    def test_plain_shortest_path_is_shorter_but_invalid(self, graph, auto):
        """§4's motivation: the plain shortest path to the dangling-else
        state is 'IF expr THEN stmt' (4 symbols), but at that point the
        reduce item's precise lookahead cannot contain ELSE; the
        lookahead-sensitive path is strictly longer."""
        conflict = conflict_on(auto, "ELSE")
        # Plain BFS over states, ignoring lookaheads:
        from collections import deque

        target = conflict.state_id
        queue = deque([(0, 0)])
        seen = {0}
        plain_length = None
        while queue:
            state_id, depth = queue.popleft()
            if state_id == target:
                plain_length = depth
                break
            for symbol, nxt in auto.states[state_id].transitions.items():
                if nxt.id not in seen:
                    seen.add(nxt.id)
                    queue.append((nxt.id, depth + 1))
        assert plain_length == 4
        sensitive = path_prefix_symbols(graph.shortest_path(conflict))
        assert len(sensitive) == 7


class TestStructuredFailures:
    """The former bare ``RuntimeError`` sites now raise structured,
    context-carrying :class:`PathNotFoundError`s and honour budgets."""

    def test_unreachable_lookahead_raises_path_not_found(self, graph, auto):
        import dataclasses

        from repro.robust import ExplanationError, PathNotFoundError

        conflict = dataclasses.replace(
            conflict_on(auto, "ELSE"), terminal=Terminal("NO_SUCH_TERMINAL")
        )
        with pytest.raises(PathNotFoundError) as excinfo:
            graph.shortest_path(conflict)
        error = excinfo.value
        assert isinstance(error, ExplanationError)
        assert error.stage == "lasg"
        assert error.context["state_id"] == conflict.state_id
        assert "NO_SUCH_TERMINAL" in error.context["conflict"]
        assert "lookahead-sensitive path" in error.describe()

    def test_failure_surfaces_as_degraded_stub_not_crash(self, figure1):
        import dataclasses

        from repro.core import CounterexampleFinder
        from repro.robust import Rung, Stage

        finder = CounterexampleFinder(figure1)
        doctored = dataclasses.replace(
            finder.conflicts[0], terminal=Terminal("NO_SUCH_TERMINAL")
        )
        report = finder.explain(doctored)  # must not raise
        assert report.rung is Rung.STUB
        assert report.stub is not None
        assert report.degradations[0].stage is Stage.LASG
        assert report.degradations[0].error_type == "PathNotFoundError"

    def test_zero_time_budget_raises_search_timeout(self, graph, auto):
        from repro.robust import Budget, SearchTimeout

        with pytest.raises(SearchTimeout):
            graph.shortest_path(
                conflict_on(auto, "ELSE"), budget=Budget(time_limit=0.0)
            )

    def test_zero_node_budget_raises_budget_exhausted(self, graph, auto):
        from repro.robust import Budget, BudgetExhausted

        with pytest.raises(BudgetExhausted):
            graph.shortest_path(
                conflict_on(auto, "ELSE"), budget=Budget(max_nodes=0)
            )
