"""Golden counterexample strings: pin the exact examples the paper prints.

These are the strongest fidelity tests in the suite — the tool must emit
the very counterexamples the paper shows, character for character (modulo
our token spellings).
"""

import pytest

from repro.automaton import build_lalr
from repro.core import CounterexampleFinder, format_symbols
from repro.corpus import all_specs, load
from repro.verify import CounterexampleValidator

#: (grammar, conflict terminal) -> the paper's counterexample string.
GOLDEN = {
    # Figure 11 / §2.4: the + associativity conflict.
    ("figure1", "+"): "expr + expr • + expr",
    # §4 / Figure 5: the dangling else.
    ("figure1", "ELSE"): "IF expr THEN IF expr THEN stmt • ELSE stmt",
    # §3.1 / §5.2 Stage 4: the challenging conflict.
    ("figure1", "DIGIT"): "expr ? arr [ expr ] := num • DIGIT DIGIT ? stmt stmt",
}

#: figure7's two conflicts (§5.2): keyed by the shift item's production.
GOLDEN_FIGURE7 = {
    "B ::= a b c": "n a • b c",
    "B ::= a b d": "n n a • b d c",
}


class TestGoldenStrings:
    @pytest.fixture(scope="class")
    def figure1_reports(self):
        finder = CounterexampleFinder(load("figure1"), time_limit=10.0)
        return {
            str(r.conflict.terminal): r.counterexample
            for r in finder.explain_all().reports
        }

    @pytest.mark.parametrize(
        "terminal", ["+", "ELSE", "DIGIT"], ids=["plus", "else", "challenging"]
    )
    def test_figure1(self, figure1_reports, terminal):
        example = figure1_reports[terminal]
        assert example.unifying
        assert format_symbols(example.example1()) == GOLDEN[("figure1", terminal)]

    def test_figure7(self):
        finder = CounterexampleFinder(load("figure7"), time_limit=10.0)
        for report in finder.explain_all().reports:
            example = report.counterexample
            assert example.unifying
            key = str(report.conflict.other_item.production)
            assert format_symbols(example.example1()) == GOLDEN_FIGURE7[key]

    def test_figure3_nonunifying_shapes(self):
        """figure3 (§2.2): reduce side sees 'a • a ...', shift side 'a • a b'."""
        finder = CounterexampleFinder(load("figure3"), time_limit=10.0)
        example = finder.explain_all().reports[0].counterexample
        assert not example.unifying
        assert format_symbols(example.example1()).startswith("a • a")
        assert format_symbols(example.example2()) == "a • a b"

    def test_ambfailed01_extended_golden(self):
        """The §6 tradeoff witness unifies only under -extendedsearch."""
        finder = CounterexampleFinder(
            load("ambfailed01"), time_limit=10.0, extended_search=True
        )
        example = finder.explain_all().reports[0].counterexample
        assert example.unifying
        assert format_symbols(example.example1()) == "Y Y a • p r"


#: Conflicts validated per grammar below; the heavy corpus rows have
#: hundreds of conflicts and are covered exhaustively by the benchmark
#: harness and the fuzz campaigns, not by this per-commit sweep.
MAX_VALIDATED_CONFLICTS = 3


class TestRegistryWideValidation:
    """Every corpus grammar's counterexamples survive independent validation.

    The golden strings above pin a handful of figures character for
    character; this class covers the whole registry semantically: each
    explained conflict is replayed by
    :class:`repro.verify.CounterexampleValidator`, which re-derives the
    claimed sentential forms and re-proves ambiguity with the Earley
    oracle — no finder internals trusted.
    """

    @pytest.mark.parametrize("name", [spec.name for spec in all_specs()])
    def test_counterexamples_validate(self, name):
        grammar = load(name)
        automaton = build_lalr(grammar)
        if not automaton.conflicts:
            return  # LALR(1) grammar: nothing to explain or validate
        finder = CounterexampleFinder(
            automaton, time_limit=0.5, cumulative_limit=5.0, verify=True
        )
        validator = CounterexampleValidator(grammar, glr_check=False)
        for conflict in automaton.conflicts[:MAX_VALIDATED_CONFLICTS]:
            report = finder.explain(conflict)
            result = validator.validate(report.counterexample)
            assert result.ok, (
                f"{name}, conflict [{conflict}]:\n{result.describe()}"
            )
