"""Shared fixtures: the paper's grammars and a few classics."""

from __future__ import annotations

import pytest

from repro.grammar import Grammar, load_grammar

FIGURE1_TEXT = """
%grammar figure1
%start stmt
stmt : IF expr THEN stmt ELSE stmt
     | IF expr THEN stmt
     | expr '?' stmt stmt
     | arr '[' expr ']' ':=' expr
     ;
expr : num | expr '+' expr ;
num  : DIGIT | num DIGIT ;
"""

FIGURE3_TEXT = """
%grammar figure3
%start S
S : T | S T ;
T : X | Y ;
X : 'a' ;
Y : 'a' 'a' 'b' ;
"""

FIGURE7_TEXT = """
%grammar figure7
%start S
S : N | N 'c' ;
N : 'n' N 'd' | 'n' N 'c' | 'n' A 'b' | 'n' B ;
A : 'a' ;
B : 'a' 'b' 'c' | 'a' 'b' 'd' ;
"""

EXPR_TEXT = """
%grammar expr
%start e
e : e '+' t | t ;
t : t '*' f | f ;
f : '(' e ')' | ID ;
"""

AMBIG_EXPR_TEXT = """
%grammar ambiguous-expr
%start e
e : e '+' e | e '*' e | ID ;
"""


@pytest.fixture
def figure1() -> Grammar:
    return load_grammar(FIGURE1_TEXT)


@pytest.fixture
def figure3() -> Grammar:
    return load_grammar(FIGURE3_TEXT)


@pytest.fixture
def figure7() -> Grammar:
    return load_grammar(FIGURE7_TEXT)


@pytest.fixture
def expr_grammar() -> Grammar:
    return load_grammar(EXPR_TEXT)


@pytest.fixture
def ambiguous_expr() -> Grammar:
    return load_grammar(AMBIG_EXPR_TEXT)
