"""Tests for the lint engine: configuration, reports, thresholds."""

import pytest

from repro.automaton import build_lalr
from repro.grammar import load_grammar
from repro.lint import (
    Diagnostic,
    LintConfig,
    Severity,
    SourceSpan,
    all_rules,
    get_rule,
    rule_ids,
    run_lint,
)

AMBIGUOUS = "e : e '+' e | ID ;"


class TestRegistry:
    def test_all_rules_are_singletons_with_metadata(self):
        for rule in all_rules():
            assert rule.rule_id
            assert isinstance(rule.severity, Severity)
            assert rule.title
            assert rule.rationale

    def test_rule_ids_unique_and_stable_order(self):
        ids = rule_ids()
        assert len(ids) == len(set(ids))
        # Catalog order ends with the always-on summary rule.
        assert ids[-1] == "lr-class"

    def test_get_rule_unknown_lists_known(self):
        with pytest.raises(KeyError, match="unit-production"):
            get_rule("no-such-rule")


class TestLintConfig:
    def test_default_runs_every_rule(self):
        report = run_lint(load_grammar(AMBIGUOUS))
        assert report.rules_run == rule_ids()

    def test_enabled_subset(self):
        config = LintConfig(enabled=frozenset({"lr-class", "unit-production"}))
        report = run_lint(load_grammar(AMBIGUOUS), config=config)
        # Catalog order is preserved regardless of the set's order.
        assert report.rules_run == ["unit-production", "lr-class"]

    def test_disabled_subtracts(self):
        config = LintConfig(disabled=frozenset({"lr-class"}))
        report = run_lint(load_grammar(AMBIGUOUS), config=config)
        assert "lr-class" not in report.rules_run
        assert len(report.rules_run) == len(rule_ids()) - 1

    def test_unknown_enabled_rule_raises(self):
        with pytest.raises(KeyError):
            run_lint(
                load_grammar(AMBIGUOUS),
                config=LintConfig(enabled=frozenset({"tyop-rule"})),
            )

    def test_unknown_disabled_rule_raises(self):
        with pytest.raises(KeyError):
            run_lint(
                load_grammar(AMBIGUOUS),
                config=LintConfig(disabled=frozenset({"tyop-rule"})),
            )


class TestLintReport:
    def test_diagnostics_sorted_by_line_then_rule(self):
        text = """
        %left UNUSED
        s : e 'x' | dead2 ;
        e : e '+' e | ID ;
        dead2 : 'y' ;
        dead1 : 'z' ;
        """
        report = run_lint(load_grammar(text))
        keyed = [
            (d.span.line if d.span.line is not None else 1_000_000_000, d.rule_id, d.message)
            for d in report.diagnostics
        ]
        assert keyed == sorted(keyed)

    def test_counts_and_worst(self):
        report = run_lint(load_grammar("s : t ;  t : 'x' ;  dead : 'y' ;"))
        counts = report.counts()
        assert counts["warning"] >= 1  # unreachable 'dead'
        assert counts["info"] >= 1  # unit production + lr-class
        assert counts["error"] == 0
        assert report.worst() is Severity.WARNING

    def test_should_fail_thresholds(self):
        # Warnings but no errors.
        report = run_lint(load_grammar("s : 'a' ;  dead : 'b' ;"))
        assert report.worst() is Severity.WARNING
        assert not report.should_fail(Severity.ERROR)
        assert report.should_fail(Severity.WARNING)
        assert report.should_fail(Severity.INFO)

    def test_should_fail_on_error(self):
        report = run_lint(load_grammar("s : 'a' | x ;  x : x 'b' ;"))
        assert report.worst() is Severity.ERROR
        assert report.should_fail(Severity.ERROR)

    def test_by_rule_selects_matching_diagnostics(self):
        report = run_lint(load_grammar(AMBIGUOUS))
        summary = report.by_rule("lr-class")
        assert len(summary) == 1
        assert all(d.rule_id == "lr-class" for d in summary)
        total = sum(len(report.by_rule(rule_id)) for rule_id in rule_ids())
        assert total == len(report.diagnostics)

    def test_grammar_name_and_source_path_recorded(self):
        grammar = load_grammar(AMBIGUOUS, name="expr")
        report = run_lint(grammar, source_path="expr.y")
        assert report.grammar_name == "expr"
        assert report.source_path == "expr.y"


class TestAutomatonReuse:
    def test_prebuilt_automaton_is_used(self):
        grammar = load_grammar(AMBIGUOUS)
        automaton = build_lalr(grammar)
        report = run_lint(grammar, automaton=automaton)
        # Same conflict summary either way; mainly this must not rebuild
        # (and must not crash when handed a shared automaton).
        fresh = run_lint(grammar)
        assert [d.message for d in report.diagnostics] == [
            d.message for d in fresh.diagnostics
        ]


class TestSeverity:
    def test_parse(self):
        assert Severity.parse("info") is Severity.INFO
        assert Severity.parse("warning") is Severity.WARNING
        assert Severity.parse("error") is Severity.ERROR

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError):
            Severity.parse("fatal")

    def test_ordering(self):
        assert Severity.ERROR.at_least(Severity.WARNING)
        assert Severity.WARNING.at_least(Severity.WARNING)
        assert not Severity.INFO.at_least(Severity.WARNING)

    def test_sarif_levels(self):
        assert Severity.INFO.sarif_level == "note"
        assert Severity.WARNING.sarif_level == "warning"
        assert Severity.ERROR.sarif_level == "error"


class TestDiagnosticModel:
    def test_as_dict_round_trip_fields(self):
        diag = Diagnostic(
            rule_id="unit-production",
            severity=Severity.INFO,
            message="msg",
            span=SourceSpan(line=3, end_line=4),
            fix_hint="inline it",
        )
        data = diag.as_dict()
        assert data["rule"] == "unit-production"
        assert data["severity"] == "info"
        assert data["line"] == 3
        assert data["endLine"] == 4
        assert data["hint"] == "inline it"

    def test_span_defaults_end_line(self):
        span = SourceSpan(line=7)
        assert span.end_line == 7
        assert span.known
        assert not SourceSpan(line=None).known
