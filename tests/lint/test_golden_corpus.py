"""Golden lint reports for corpus grammars.

Full-text goldens pin the small grammars' reports exactly; the large
BV10 grammars are pinned by severity counts and spot findings so
routine message tweaks do not churn hundreds of golden lines.
"""

import pytest

from repro.corpus import all_specs, load
from repro.lint import LintConfig, render_text, run_lint

GOLDEN_FIGURE7 = """\
<figure7>:4: warning[dangling-else]: dangling-c pattern: 'S ::= N' is a proper prefix of 'S ::= N c' and c can follow N
    hint: bind c with precedence (%prec/%right) or split S into matched/unmatched forms
<figure7>:4: warning[lr-class]: grammar is not LR(1): 2 LALR conflicts (2 shift/reduce, 0 reduce/reduce) over 16 states (density 0.12 conflicts/state)
    hint: run the counterexample finder for per-conflict explanations
<figure7>:4: info[unit-production]: unit production S ::= N
<figure7>:6: error[proved-ambiguous]: shift/reduce conflict in state 7 on b is a proved ambiguity: sentence 'n a b c' has two distinct derivations
    hint: restructure the conflicting productions (or add precedence to pick one reading) so only a single derivation survives
<figure7>:6: error[proved-ambiguous]: shift/reduce conflict in state 7 on b is a proved ambiguity: sentence 'n a b c' has two distinct derivations
    hint: restructure the conflicting productions (or add precedence to pick one reading) so only a single derivation survives
lint: 2 errors, 2 warnings, 1 notes (14 rules on grammar 'figure7')"""

GOLDEN_ABCD = """\
<abcd>:4: warning[lr-class]: grammar is not LR(1): 3 LALR conflicts (3 shift/reduce, 0 reduce/reduce) over 18 states (density 0.17 conflicts/state)
    hint: run the counterexample finder for per-conflict explanations
<abcd>:5: error[proved-ambiguous]: shift/reduce conflict in state 7 on c is a proved ambiguity: sentence 'a b c d' has two distinct derivations
    hint: restructure the conflicting productions (or add precedence to pick one reading) so only a single derivation survives
<abcd>:7: error[proved-ambiguous]: shift/reduce conflict in state 4 on b is a proved ambiguity: sentence 'a b c d' has two distinct derivations
    hint: restructure the conflicting productions (or add precedence to pick one reading) so only a single derivation survives
<abcd>:7: error[proved-ambiguous]: shift/reduce conflict in state 4 on b is a proved ambiguity: sentence 'a b c d' has two distinct derivations
    hint: restructure the conflicting productions (or add precedence to pick one reading) so only a single derivation survives
lint: 3 errors, 1 warnings, 0 notes (14 rules on grammar 'abcd')"""

GOLDEN_CLEAN_JSON = """\
<clean-json>:4: info[lr-class]: grammar is SLR(1) (hence LALR(1) and LR(1)); 22 states, no conflicts
<clean-json>:9: info[unit-production]: unit production members ::= pairs
<clean-json>:10: info[left-recursion]: nonterminal pairs is left-recursive (fine for LR parsing; fatal for LL consumers)
<clean-json>:10: info[unit-production]: unit production pairs ::= pair
<clean-json>:12: info[unit-production]: unit production elements ::= items
<clean-json>:13: info[left-recursion]: nonterminal items is left-recursive (fine for LR parsing; fatal for LL consumers)
<clean-json>:13: info[unit-production]: unit production items ::= value
lint: 0 errors, 0 warnings, 7 notes (14 rules on grammar 'clean-json')"""


def lint_text(name: str) -> str:
    return render_text(run_lint(load(name)))


class TestFullTextGoldens:
    def test_figure7(self):
        assert lint_text("figure7") == GOLDEN_FIGURE7

    def test_abcd(self):
        assert lint_text("abcd") == GOLDEN_ABCD

    def test_clean_json_is_warning_free(self):
        assert lint_text("clean-json") == GOLDEN_CLEAN_JSON

    def test_figure1_findings(self):
        # Figure 1 is the paper's dangling-else grammar: the lint layer
        # must flag the pattern and the undeclared '+' operator.
        text = lint_text("figure1")
        assert "warning[dangling-else]: dangling-ELSE pattern" in text
        assert "'stmt ::= IF expr THEN stmt'" in text
        assert "warning[missing-operator-precedence]" in text
        assert "binary operator + in 'expr ::= expr + expr'" in text
        assert "3 LALR conflicts (3 shift/reduce, 0 reduce/reduce)" in text
        assert "error[proved-ambiguous]" in text
        assert "info[potentially-ambiguous]" in text
        assert text.endswith(
            "lint: 1 errors, 3 warnings, 5 notes (14 rules on grammar 'figure1')"
        )


class TestLargeGrammarCounts:
    """BV10 grammars: pin severity counts plus one emblematic finding."""

    def test_pascal1(self):
        report = run_lint(load("Pascal.1"))
        assert report.counts() == {"info": 50, "warning": 4, "error": 0}
        dangling = [d.message for d in report.by_rule("dangling-else")]
        assert any("ELSE" in message for message in dangling)

    def test_sql2(self):
        report = run_lint(load("SQL.2"))
        assert report.counts() == {"info": 43, "warning": 4, "error": 0}
        # The injected conflict shows up in the summary rule.
        (summary,) = report.by_rule("lr-class")
        assert "1 LALR conflicts" in summary.message


class TestCleanGrammarStaysClean:
    def test_zero_warnings_zero_errors(self):
        report = run_lint(load("clean-json"))
        counts = report.counts()
        assert counts["warning"] == 0
        assert counts["error"] == 0

    def test_fail_on_warning_would_pass(self):
        from repro.lint import Severity

        report = run_lint(load("clean-json"))
        assert not report.should_fail(Severity.WARNING)


class TestInjectedDefectsAreTruePositives:
    def test_java2_nullable_modifiers_cycle_is_caught(self):
        # Java.2's injected defect (the paper's 1133-conflict variant)
        # really is a derivation cycle; lint must flag it at error
        # severity — CI's corpus gate asserts the same expected failure.
        report = run_lint(
            load("Java.2"),
            config=LintConfig(enabled=frozenset({"derivation-cycle"})),
        )
        (diagnostic,) = report.diagnostics
        assert "Modifiers" in diagnostic.message
        assert report.counts()["error"] == 1


class TestEveryDiagnosticHasALine:
    """Acceptance criterion: every diagnostic produced for a DSL-loaded
    grammar carries a source line."""

    @pytest.mark.parametrize(
        "name", ["figure1", "figure7", "abcd", "clean-json", "Pascal.1", "SQL.2"]
    )
    def test_golden_grammars(self, name):
        report = run_lint(load(name))
        assert report.diagnostics, name
        for diagnostic in report.diagnostics:
            assert diagnostic.span.line is not None, (name, diagnostic)

    @pytest.mark.slow
    def test_whole_registry(self):
        capped = LintConfig(max_lr1_states=2_000)
        for spec in all_specs():
            report = run_lint(spec.load(), config=capped)
            for diagnostic in report.diagnostics:
                assert diagnostic.span.line is not None, (spec.name, diagnostic)
