"""Per-rule unit tests: each lint rule has a minimal grammar that fires
it and a minimal grammar that does not."""

import pytest

from repro.grammar import load_grammar
from repro.lint import LintConfig, Severity, run_lint


def lint_rule(text: str, rule_id: str):
    """Run exactly one rule over DSL *text*; returns its diagnostics."""
    grammar = load_grammar(text)
    report = run_lint(grammar, config=LintConfig(enabled=frozenset({rule_id})))
    assert report.rules_run == [rule_id]
    return report.diagnostics


class TestUnreachableNonterminal:
    def test_fires(self):
        diags = lint_rule("s : 'a' ;  dead : 'b' ;", "unreachable-nonterminal")
        assert len(diags) == 1
        assert "dead" in diags[0].message
        assert diags[0].severity is Severity.WARNING
        assert diags[0].span.line == 1

    def test_clean(self):
        assert lint_rule("s : 'a' s | 'b' ;", "unreachable-nonterminal") == []


class TestNonproductiveNonterminal:
    def test_fires(self):
        diags = lint_rule(
            "s : 'a' | x ;  x : x 'b' ;", "nonproductive-nonterminal"
        )
        assert len(diags) == 1
        assert "x" in diags[0].message
        assert diags[0].severity is Severity.ERROR

    def test_clean(self):
        assert lint_rule("s : 'a' s | 'b' ;", "nonproductive-nonterminal") == []


class TestDerivationCycle:
    def test_fires_on_unit_cycle(self):
        diags = lint_rule("s : a ;  a : b | 'x' ;  b : a ;", "derivation-cycle")
        assert len(diags) == 1
        assert "a" in diags[0].message and "b" in diags[0].message
        assert diags[0].severity is Severity.ERROR

    def test_fires_on_epsilon_cycle(self):
        # s -> n s with n nullable: s =>+ s.
        diags = lint_rule("s : n s | 'x' ;  n : %empty | 'y' ;", "derivation-cycle")
        assert len(diags) == 1

    def test_clean(self):
        assert lint_rule("s : a ;  a : 'x' ;", "derivation-cycle") == []


class TestUnitProduction:
    def test_fires(self):
        diags = lint_rule("s : t ;  t : 'x' ;", "unit-production")
        assert len(diags) == 1
        assert "s ::= t" in diags[0].message
        assert diags[0].severity is Severity.INFO

    def test_clean(self):
        assert lint_rule("s : 'a' t ;  t : 'x' ;", "unit-production") == []


class TestLeftRecursion:
    def test_fires(self):
        diags = lint_rule("s : s 'a' | 'b' ;", "left-recursion")
        assert len(diags) == 1
        assert "left-recursive" in diags[0].message

    def test_clean_on_right_recursion(self):
        assert lint_rule("s : 'a' s | 'b' ;", "left-recursion") == []


class TestUnusedPrecedence:
    def test_fires_on_never_used_terminal(self):
        diags = lint_rule("%left OP\ns : 'a' ;", "unused-precedence")
        assert len(diags) == 1
        assert "appears in no production" in diags[0].message
        assert diags[0].severity is Severity.WARNING
        assert diags[0].span.line == 1

    def test_fires_conflict_irrelevant_as_info(self):
        # ',' is used but the grammar has no conflict for it to resolve.
        diags = lint_rule(
            "%left ','\ns : s ',' 'a' | 'a' ;", "unused-precedence"
        )
        assert len(diags) == 1
        assert "conflict-irrelevant" in diags[0].message
        assert diags[0].severity is Severity.INFO

    def test_clean_when_resolving_a_conflict(self):
        diags = lint_rule(
            "%left '+'\ne : e '+' e | ID ;", "unused-precedence"
        )
        assert diags == []


class TestUnusedToken:
    def test_fires_on_unused(self):
        diags = lint_rule("%token FOO BAR\ns : FOO ;", "unused-token")
        assert len(diags) == 1
        assert "BAR" in diags[0].message
        assert diags[0].span.line == 1

    def test_fires_on_nonterminal_collision(self):
        diags = lint_rule("%token s\ns : 'a' ;", "unused-token")
        assert len(diags) == 1
        assert "nonterminal" in diags[0].message

    def test_clean(self):
        assert lint_rule("%token A\ns : A ;", "unused-token") == []


class TestNullableOverlap:
    def test_fires_on_two_nullable_alternatives(self):
        diags = lint_rule(
            "s : a 'x' ;  a : %empty | b ;  b : %empty ;", "nullable-overlap"
        )
        assert any("empty string" in d.message for d in diags)

    def test_fires_on_adjacent_overlapping_nullables(self):
        diags = lint_rule(
            "s : a b ;  a : 'x' | %empty ;  b : 'x' | %empty ;",
            "nullable-overlap",
        )
        assert any("overlapping FIRST" in d.message for d in diags)

    def test_clean_on_disjoint_first_sets(self):
        diags = lint_rule(
            "s : a b ;  a : 'x' | %empty ;  b : 'y' | %empty ;",
            "nullable-overlap",
        )
        assert diags == []


class TestDanglingElse:
    GRAMMAR = """
    %start stmt
    stmt : IF expr THEN stmt ELSE stmt
         | IF expr THEN stmt
         | ID ;
    expr : ID ;
    """

    def test_fires(self):
        diags = lint_rule(self.GRAMMAR, "dangling-else")
        assert len(diags) == 1
        assert "dangling-ELSE" in diags[0].message
        # Points at the longer production (the if/then/else line).
        assert diags[0].span.line == 3

    def test_clean_when_prefix_ends_with_terminal(self):
        # Prefix pair exists but the shorter alternative ends with a
        # terminal, so no reduce decision is pending at the junction.
        diags = lint_rule("s : A 'x' | A 'x' C ;  A : 'a' ;", "dangling-else")
        assert diags == []


class TestMissingOperatorPrecedence:
    def test_fires(self):
        diags = lint_rule("e : e '+' e | ID ;", "missing-operator-precedence")
        assert len(diags) == 1
        assert "'+'" in diags[0].message or "+" in diags[0].message

    def test_clean_with_declaration(self):
        diags = lint_rule(
            "%left '+'\ne : e '+' e | ID ;", "missing-operator-precedence"
        )
        assert diags == []


class TestDeepPriorityConflict:
    def test_fires_on_low_priority_prefix(self):
        diags = lint_rule(
            "%left NEG\n%left '*'\ne : e '*' e | NEG e | ID ;",
            "deep-priority-conflict",
        )
        assert len(diags) == 1
        assert "dangling-prefix" in diags[0].message

    def test_fires_on_low_priority_postfix(self):
        diags = lint_rule(
            "%left BANG\n%left '*'\ne : e '*' e | e BANG | ID ;",
            "deep-priority-conflict",
        )
        assert len(diags) == 1
        assert "dangling-postfix" in diags[0].message

    def test_clean_when_prefix_binds_tighter(self):
        diags = lint_rule(
            "%left '*'\n%left NEG\ne : e '*' e | NEG e | ID ;",
            "deep-priority-conflict",
        )
        assert diags == []


class TestLrClassSummary:
    def test_slr1(self):
        diags = lint_rule("s : '(' s ')' | 'x' ;", "lr-class")
        assert len(diags) == 1
        assert "SLR(1)" in diags[0].message
        assert diags[0].severity is Severity.INFO

    def test_lalr_but_not_slr(self):
        # The textbook LALR-not-SLR grammar.
        diags = lint_rule(
            "S : A 'a' | 'b' A 'c' | 'd' 'c' | 'b' 'd' 'a' ;  A : 'd' ;",
            "lr-class",
        )
        assert len(diags) == 1
        assert "LALR(1) but not SLR(1)" in diags[0].message

    def test_lr1_but_not_lalr(self):
        # The textbook LR(1)-not-LALR grammar (reduce/reduce after merge).
        diags = lint_rule(
            "S : 'a' E 'a' | 'b' E 'b' | 'a' F 'b' | 'b' F 'a' ;"
            "  E : 'e' ;  F : 'e' ;",
            "lr-class",
        )
        assert len(diags) == 1
        assert "LR(1) but not LALR(1)" in diags[0].message
        assert diags[0].severity is Severity.WARNING

    def test_merge_artifact_tier_recommends_algorithm_directive(self):
        # When IELR provenance proves every conflict a merge artifact,
        # the summary names the fix: switch the table algorithm.
        diags = lint_rule(
            "S : 'a' E 'a' | 'b' E 'b' | 'a' F 'b' | 'b' F 'a' ;"
            "  E : 'e' ;  F : 'e' ;",
            "lr-class",
        )
        assert len(diags) == 1
        assert "merge artifacts" in diags[0].message
        assert "%algorithm ielr" in diags[0].message

    def test_genuinely_ambiguous_grammar_gets_no_algorithm_hint(self):
        diags = lint_rule("e : e '+' e | ID ;", "lr-class")
        assert len(diags) == 1
        assert "%algorithm" not in diags[0].message

    def test_ambiguous_grammar_not_lr1(self):
        diags = lint_rule("e : e '+' e | ID ;", "lr-class")
        assert len(diags) == 1
        assert "not LR(1)" in diags[0].message
        assert "density" in diags[0].message
        assert diags[0].severity is Severity.WARNING


class TestProvedAmbiguous:
    def test_fires_on_proved_ambiguity(self):
        diags = lint_rule("e : e '+' e | ID ;", "proved-ambiguous")
        assert len(diags) == 1
        assert diags[0].severity is Severity.ERROR
        assert "two distinct derivations" in diags[0].message
        assert "ID + ID + ID" in diags[0].message

    def test_silent_on_unambiguous_conflicts(self):
        from repro.corpus import load

        # nonlalr01's conflicts are merge artifacts the walk proves
        # unambiguous — an ERROR here would be a soundness bug.
        report = run_lint(
            load("nonlalr01"),
            config=LintConfig(enabled=frozenset({"proved-ambiguous"})),
        )
        assert report.diagnostics == []

    def test_silent_without_conflicts(self):
        assert lint_rule("s : '(' s ')' | 'x' ;", "proved-ambiguous") == []


class TestPotentiallyAmbiguous:
    def test_fires_on_inconclusive_walk(self):
        from repro.corpus import load

        report = run_lint(
            load("figure1"),
            config=LintConfig(enabled=frozenset({"potentially-ambiguous"})),
        )
        assert report.diagnostics
        assert all(
            d.severity is Severity.INFO and "potentially ambiguous" in d.message
            for d in report.diagnostics
        )

    def test_silent_when_all_verdicts_decided(self):
        from repro.corpus import load

        report = run_lint(
            load("nonlalr01"),
            config=LintConfig(enabled=frozenset({"potentially-ambiguous"})),
        )
        assert report.diagnostics == []


class TestEveryRuleHasBothPolarities:
    """Meta-test: the catalog above covers all registered rules."""

    def test_all_rules_tested(self):
        from repro.lint import rule_ids

        tested = {
            "proved-ambiguous",
            "potentially-ambiguous",
            "unreachable-nonterminal",
            "nonproductive-nonterminal",
            "derivation-cycle",
            "unit-production",
            "left-recursion",
            "unused-precedence",
            "unused-token",
            "nullable-overlap",
            "dangling-else",
            "missing-operator-precedence",
            "deep-priority-conflict",
            "lr-class",
        }
        assert set(rule_ids()) == tested


@pytest.mark.parametrize(
    "rule_id",
    [
        "unreachable-nonterminal",
        "nonproductive-nonterminal",
        "derivation-cycle",
        "unit-production",
        "left-recursion",
        "unused-precedence",
        "unused-token",
        "nullable-overlap",
        "dangling-else",
        "missing-operator-precedence",
        "deep-priority-conflict",
        "proved-ambiguous",
        "potentially-ambiguous",
    ],
)
def test_rule_silent_on_clean_control_grammar(rule_id):
    """Every rule except the always-on summary stays silent on the
    lint-clean control grammar."""
    from repro.corpus import load

    grammar = load("clean-json")
    report = run_lint(grammar, config=LintConfig(enabled=frozenset({rule_id})))
    diags = [d for d in report.diagnostics if d.severity is not Severity.INFO]
    assert diags == []
