"""Renderer tests: text, JSON, and SARIF 2.1.0 structural validity."""

import json

import pytest

from repro.grammar import load_grammar
from repro.lint import (
    RENDERERS,
    render,
    render_json,
    render_sarif,
    render_text,
    run_lint,
)

# Fires unreachable-nonterminal (warning), unit-production (note with a
# fix hint), left-recursion, and the lr-class summary.
SAMPLE = """
s : t ;
t : t '+' ID | ID ;
dead : 'x' ;
"""


@pytest.fixture()
def report():
    return run_lint(load_grammar(SAMPLE, name="sample"), source_path="sample.y")


class TestTextRenderer:
    def test_line_format_and_summary(self, report):
        text = render_text(report)
        lines = text.splitlines()
        # Every diagnostic line is "path:line: severity[rule]: message".
        assert any(line.startswith("sample.y:") for line in lines)
        assert any("[unreachable-nonterminal]" in line for line in lines)
        assert lines[-1].startswith("lint: 0 errors, 1 warnings,")
        assert "grammar 'sample'" in lines[-1]

    def test_hints_are_indented(self, report):
        text = render_text(report)
        hint_lines = [l for l in text.splitlines() if l.startswith("    hint:")]
        assert hint_lines  # unit-production carries a fix hint

    def test_grammar_name_label_without_path(self):
        plain = run_lint(load_grammar(SAMPLE, name="sample"))
        text = render_text(plain)
        assert "<sample>:" in text


class TestJsonRenderer:
    def test_payload_shape(self, report):
        data = json.loads(render_json(report))
        assert data["grammar"] == "sample"
        assert data["source"] == "sample.y"
        assert set(data["summary"]) == {"info", "warning", "error"}
        assert data["rules"] == report.rules_run
        assert len(data["diagnostics"]) == len(report.diagnostics)
        for entry in data["diagnostics"]:
            assert {"rule", "severity", "message"} <= set(entry)
            assert entry["line"] is not None  # DSL grammars carry lines


class TestSarifRenderer:
    """Assert the SARIF 2.1.0 required fields the acceptance criteria name."""

    def test_top_level_required_fields(self, report):
        doc = json.loads(render_sarif(report))
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        assert isinstance(doc["runs"], list) and len(doc["runs"]) == 1

    def test_tool_driver_and_rule_catalog(self, report):
        doc = json.loads(render_sarif(report))
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        catalog_ids = [rule["id"] for rule in driver["rules"]]
        assert catalog_ids == report.rules_run
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "note", "warning", "error",
            )

    def test_results_reference_rules_and_carry_locations(self, report):
        doc = json.loads(render_sarif(report))
        run = doc["runs"][0]
        catalog_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert len(run["results"]) == len(report.diagnostics)
        for result in run["results"]:
            assert result["ruleId"] in catalog_ids
            assert catalog_ids[result["ruleIndex"]] == result["ruleId"]
            assert result["level"] in ("note", "warning", "error")
            assert result["message"]["text"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"] == "sample.y"
            assert location["region"]["startLine"] >= 1

    def test_info_maps_to_note_level(self, report):
        doc = json.loads(render_sarif(report))
        levels = {r["level"] for r in doc["runs"][0]["results"]}
        assert "note" in levels  # Severity.INFO must not leak as "info"
        assert "info" not in levels

    def test_default_artifact_uri_from_grammar_name(self):
        plain = run_lint(load_grammar(SAMPLE, name="sample"))
        doc = json.loads(render_sarif(plain))
        uri = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"]["artifactLocation"]["uri"]
        assert uri == "sample.y"


class TestDispatcher:
    def test_formats(self, report):
        assert set(RENDERERS) == {"text", "json", "sarif"}
        for fmt in RENDERERS:
            assert render(report, fmt) == RENDERERS[fmt](report)

    def test_unknown_format_raises_with_known_list(self, report):
        with pytest.raises(KeyError, match="sarif"):
            render(report, "xml")
