"""Property-based tests on the SR pair-walk ambiguity analysis.

Over a few hundred sampled random grammars:

* every conflict gets exactly one verdict, deterministically;
* an ``ambiguous`` verdict's witness really has two Earley derivations
  (walk-never-contradicts-the-oracle, the differential invariant);
* starving the budget degrades any verdict to ``inconclusive`` at
  worst — never a witness-free ambiguity claim, never an exception.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import AmbiguityVerdict, analyze_conflicts
from repro.automaton import build_lalr
from repro.grammar import GrammarBuilder
from repro.parsing import DerivationBudgetExceeded, EarleyParser

NONTERMINALS = ["n0", "n1", "n2"]
TERMINALS = ["a", "b", "c"]


@st.composite
def random_grammars(draw):
    builder = GrammarBuilder("random")
    for lhs in NONTERMINALS:
        count = draw(st.integers(min_value=1, max_value=3))
        for _ in range(count):
            length = draw(st.integers(min_value=0, max_value=3))
            rhs = [
                draw(st.sampled_from(NONTERMINALS + TERMINALS))
                for _ in range(length)
            ]
            builder.rule(lhs, rhs)
    return builder.build(start="n0")


@settings(max_examples=200, deadline=None, derandomize=True)
@given(random_grammars())
def test_every_conflict_verdicted_deterministically(grammar):
    automaton = build_lalr(grammar)
    verdicts = analyze_conflicts(automaton)
    assert set(verdicts) == set(automaton.tables.conflicts)
    assert verdicts == analyze_conflicts(automaton)


@settings(max_examples=200, deadline=None, derandomize=True)
@given(random_grammars())
def test_ambiguous_witnesses_recount_under_earley(grammar):
    automaton = build_lalr(grammar)
    if not automaton.tables.conflicts:
        return
    earley = EarleyParser(grammar)
    for verdict in analyze_conflicts(automaton).values():
        if verdict.verdict is not AmbiguityVerdict.AMBIGUOUS:
            continue
        assert verdict.witness is not None
        try:
            count = earley.count_derivations(
                grammar.start,
                list(verdict.witness),
                limit=2,
                step_budget=200_000,
            )
        except DerivationBudgetExceeded:
            continue
        assert count >= 2, " ".join(t.name for t in verdict.witness)


@settings(max_examples=200, deadline=None, derandomize=True)
@given(random_grammars())
def test_starved_budget_degrades_gracefully(grammar):
    automaton = build_lalr(grammar)
    for verdict in analyze_conflicts(automaton, max_nodes=1).values():
        if verdict.verdict is AmbiguityVerdict.AMBIGUOUS:
            assert verdict.witness is not None
