"""Property-based tests: bitmask lookaheads ≡ the frozenset oracle.

The automaton's hot paths run the lookahead fixpoint over int bitmasks
(:func:`compute_lalr_lookahead_masks`); the original ``frozenset``
formulation (:func:`compute_lalr_lookaheads`) is kept as a reference
oracle. These tests fuzz small grammars and assert the two agree on
every ``(state, item)`` key — as sets, under membership, under union,
and in the name-sorted iteration order the report renderer depends on.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.automaton import build_lalr
from repro.automaton.lalr import compute_lalr_lookaheads
from repro.grammar import END_OF_INPUT, GrammarBuilder, Terminal

NONTERMINALS = ["n0", "n1", "n2"]
TERMINALS = ["a", "b", "c"]


@st.composite
def random_grammars(draw):
    builder = GrammarBuilder("random")
    for lhs in NONTERMINALS:
        count = draw(st.integers(min_value=1, max_value=3))
        for _ in range(count):
            length = draw(st.integers(min_value=0, max_value=3))
            rhs = [
                draw(st.sampled_from(NONTERMINALS + TERMINALS))
                for _ in range(length)
            ]
            builder.rule(lhs, rhs)
    return builder.build(start="n0")


@settings(max_examples=25, deadline=None, derandomize=True)
@given(random_grammars())
def test_mask_fixpoint_matches_frozenset_oracle(grammar):
    """Same keys, same sets: the bitmask fixpoint is the oracle, faster."""
    automaton = build_lalr(grammar)
    oracle = compute_lalr_lookaheads(automaton.lr0, automaton.analysis)
    assert set(automaton.lookahead_masks) == set(oracle)
    for key, expected in oracle.items():
        state_id, item = key
        view = automaton.lookaheads[key]
        assert view == expected
        assert frozenset(view) == expected
        # Round-trip through the table agrees with the raw mask.
        mask = automaton.lookahead_mask(state_id, item)
        assert automaton.terminal_table.mask_of(expected) == mask


@settings(max_examples=25, deadline=None, derandomize=True)
@given(random_grammars())
def test_membership_and_union_semantics(grammar):
    automaton = build_lalr(grammar)
    oracle = compute_lalr_lookaheads(automaton.lr0, automaton.analysis)
    probes = [Terminal(name) for name in TERMINALS] + [
        END_OF_INPUT,
        Terminal("NO_SUCH_TERMINAL"),
    ]
    for key, expected in oracle.items():
        view = automaton.lookaheads[key]
        for terminal in probes:
            assert (terminal in view) == (terminal in expected)
        assert (view | expected) == expected
        assert (view & expected) == expected


@settings(max_examples=25, deadline=None, derandomize=True)
@given(random_grammars())
def test_iteration_is_name_sorted(grammar):
    """Reports sort lookaheads by name; the views iterate that way natively."""
    automaton = build_lalr(grammar)
    for view in automaton.lookaheads.values():
        names = [terminal.name for terminal in view]
        assert names == sorted(names)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(random_grammars())
def test_views_hash_like_frozensets(grammar):
    """Views and their frozenset equivalents collapse in sets/dict keys."""
    automaton = build_lalr(grammar)
    views = list(automaton.lookaheads.values())
    frozensets = [frozenset(view) for view in views]
    assert set(views) == set(frozensets)
    for view, reference in zip(views, frozensets):
        assert hash(view) == hash(reference)
