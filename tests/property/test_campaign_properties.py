"""Property: any shard partition merges to the 1/1 campaign report.

Unit execution is stubbed to a deterministic function of the unit id —
these properties are about the orchestration algebra (plan → partition
→ execute → checkpoint → merge → render), not the analyses.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

import repro.campaign.scheduler as scheduler_module
from repro.campaign.report import merge_shard_documents, render_report
from repro.campaign.runner import UnitResult
from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.units import CampaignSpec


def _stub_execute(unit, spec, cache=None, attempt=1):
    return UnitResult(
        unit_id=unit.id,
        outcome="ok",
        payload={"key": unit.key, "conflicts": len(unit.key)},
        telemetry={"elapsed_s": 0.0},
        attempt=attempt,
    )


def _render(spec: CampaignSpec, out, shards: int) -> str:
    paths = CampaignScheduler(spec, out).run_local(shards)
    documents = [json.loads(path.read_text()) for path in paths]
    report, _ = merge_shard_documents(documents)
    return render_report(report)


@settings(max_examples=12, deadline=None, derandomize=True)
@given(
    fuzz=st.integers(min_value=0, max_value=9),
    corpus=st.lists(
        st.sampled_from(["g1", "g2", "g3", "g4"]), unique=True, max_size=4
    ),
    shards=st.integers(min_value=1, max_value=6),
)
def test_any_partition_merges_to_the_single_shard_report(
    tmp_path_factory, monkeypatch_session, fuzz, corpus, shards
):
    spec = CampaignSpec(fuzz_iterations=fuzz, corpus=tuple(corpus))
    if fuzz == 0 and not corpus:
        return  # empty campaign: nothing to partition
    base = tmp_path_factory.mktemp("campaign")
    baseline = _render(spec, base / "one", 1)
    sharded = _render(spec, base / f"many-{shards}", shards)
    assert sharded == baseline


# Hypothesis reuses the function-scoped monkeypatch fixture poorly, so
# patch at module scope for the @given test above.
import pytest  # noqa: E402


@pytest.fixture(scope="session")
def monkeypatch_session():
    patcher = pytest.MonkeyPatch()
    patcher.setattr(scheduler_module, "execute_unit", _stub_execute)
    yield patcher
    patcher.undo()
