"""End-to-end property tests: every conflict of a random grammar gets a
valid counterexample, and unifying counterexamples are genuinely ambiguous."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.automaton import build_lalr
from repro.core import DOT, CounterexampleFinder
from repro.grammar import GrammarAnalysis, GrammarBuilder
from repro.parsing import EarleyParser, GLRParser, TooManyParses

NONTERMINALS = ["n0", "n1", "n2"]
TERMINALS = ["a", "b", "c"]


@st.composite
def random_grammars(draw):
    builder = GrammarBuilder("random")
    for lhs in NONTERMINALS:
        count = draw(st.integers(min_value=1, max_value=3))
        for _ in range(count):
            length = draw(st.integers(min_value=0, max_value=3))
            rhs = [
                draw(st.sampled_from(NONTERMINALS + TERMINALS))
                for _ in range(length)
            ]
            builder.rule(lhs, rhs)
    return builder.build(start="n0")


SETTINGS = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,  # stable corpus of random grammars, no shrink storms
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@SETTINGS
@given(random_grammars())
def test_every_conflict_gets_a_counterexample(grammar):
    automaton = build_lalr(grammar)
    if not automaton.conflicts:
        return
    finder = CounterexampleFinder(automaton, time_limit=0.3, cumulative_limit=2.0)
    summary = finder.explain_all()
    assert summary.num_conflicts == len(automaton.conflicts)
    for report in summary.reports:
        example = report.counterexample
        assert example.example1(), "counterexample must be nonempty"
        # The conflict point must be present in both yields.
        assert DOT in example.example1()
        assert DOT in example.example2()


@SETTINGS
@given(random_grammars())
def test_unifying_examples_are_ambiguous(grammar):
    """Unifying counterexamples must have two distinct Earley derivations
    from the unifying nonterminal (verify=False so we re-check here)."""
    automaton = build_lalr(grammar)
    if not automaton.conflicts:
        return
    finder = CounterexampleFinder(
        automaton, time_limit=0.3, cumulative_limit=2.0, verify=False
    )
    earley = EarleyParser(grammar)
    for report in finder.explain_all().reports:
        example = report.counterexample
        if not example.unifying:
            continue
        assert example.example1() == example.example2()
        assert earley.is_ambiguous_form(
            example.nonterminal, example.example1_symbols()
        )


@SETTINGS
@given(random_grammars())
def test_unifying_examples_instantiate_to_ambiguous_sentences(grammar):
    """Expanding nonterminal leaves to concrete strings keeps ambiguity:
    GLR must find two parses of the instantiated sentence."""
    automaton = build_lalr(grammar)
    if not automaton.conflicts:
        return
    analysis = GrammarAnalysis(grammar)
    finder = CounterexampleFinder(automaton, time_limit=0.3, cumulative_limit=2.0)
    glr = GLRParser(automaton, max_configurations=5_000)
    earley = EarleyParser(grammar)
    for report in finder.explain_all().reports:
        example = report.counterexample
        if not example.unifying:
            continue
        if example.nonterminal != grammar.start:
            continue  # GLR parses from the start symbol only
        tokens: list = []
        for symbol in example.example1_symbols():
            tokens.extend(analysis.shortest_expansion(symbol))
        try:
            parses = glr.parse_all(tokens)
        except TooManyParses:
            continue  # massively ambiguous; counts as ambiguous
        assert len(parses) >= 2 or earley.count_derivations(
            grammar.start, tokens, limit=2
        ) >= 2


@SETTINGS
@given(random_grammars())
def test_nonunifying_prefixes_shared(grammar):
    """Both sides of any counterexample share the prefix up to the dot."""
    automaton = build_lalr(grammar)
    if not automaton.conflicts:
        return
    finder = CounterexampleFinder(automaton, time_limit=0.3, cumulative_limit=2.0)
    for report in finder.explain_all().reports:
        example = report.counterexample
        prefix = example.prefix()
        side2 = example.example2()
        assert side2[: len(prefix)] == prefix
        # When anything follows the dot on the reduce side, it must start
        # with the conflict terminal. (A unifying counterexample may end
        # exactly at the dot — cyclic or duplicate-production ambiguities
        # complete before the conflict terminal is consumed; the terminal
        # then lives in the follow context rather than the example.)
        side1 = example.example1()
        position = side1.index(DOT)
        if position + 1 < len(side1):
            assert side1[position + 1] == example.conflict.terminal
        else:
            assert example.unifying
