"""Property-based tests on grammar analyses over random CFGs."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.grammar import (
    GrammarAnalysis,
    GrammarBuilder,
    Nonterminal,
    Terminal,
)
from repro.parsing import EarleyParser

NONTERMINALS = ["n0", "n1", "n2", "n3"]
TERMINALS = ["a", "b", "c"]


@st.composite
def random_grammars(draw):
    """Small random CFGs over a fixed symbol pool.

    Every nonterminal gets at least one production; right-hand sides are
    random symbol strings of length 0–4. Nonproductive grammars are
    filtered out by the caller where needed.
    """
    builder = GrammarBuilder("random")
    for lhs in NONTERMINALS:
        count = draw(st.integers(min_value=1, max_value=3))
        for _ in range(count):
            length = draw(st.integers(min_value=0, max_value=4))
            rhs = [
                draw(st.sampled_from(NONTERMINALS + TERMINALS))
                for _ in range(length)
            ]
            builder.rule(lhs, rhs)
    return builder.build(start="n0")


@settings(max_examples=30, deadline=None, derandomize=True)
@given(random_grammars())
def test_nullable_iff_derives_epsilon(grammar):
    """N is nullable iff the Earley oracle derives the empty string from N."""
    analysis = GrammarAnalysis(grammar)
    earley = EarleyParser(grammar)
    for nonterminal in grammar.nonterminals:
        if nonterminal == grammar.augmented_start:
            continue
        assert (nonterminal in analysis.nullable) == earley.recognizes(
            nonterminal, []
        ) or (
            # recognizes() needs >= 1 step; a nullable nonterminal always
            # has one, so the equivalence is exact.
            False
        )


@settings(max_examples=30, deadline=None, derandomize=True)
@given(random_grammars())
def test_first_is_fixpoint(grammar):
    """FIRST(N) equals the union of FIRST over N's production bodies."""
    analysis = GrammarAnalysis(grammar)
    for nonterminal in grammar.nonterminals:
        expected = set()
        for production in grammar.productions_of(nonterminal):
            expected |= analysis.first_of_sequence(production.rhs)
        assert analysis.first[nonterminal] == frozenset(expected)


@settings(max_examples=30, deadline=None, derandomize=True)
@given(random_grammars())
def test_shortest_expansion_is_derivable_and_minimal(grammar):
    """shortest_expansion produces a derivable string of minimal length."""
    analysis = GrammarAnalysis(grammar)
    earley = EarleyParser(grammar)
    for nonterminal in grammar.nonterminals:
        if nonterminal == grammar.augmented_start:
            continue
        if nonterminal in grammar.nonproductive_nonterminals:
            with pytest.raises(ValueError):
                analysis.shortest_expansion(nonterminal)
            continue
        expansion = analysis.shortest_expansion(nonterminal)
        assert len(expansion) == analysis.min_yield_length(nonterminal)
        if expansion:
            assert earley.recognizes(nonterminal, expansion)


@settings(max_examples=30, deadline=None, derandomize=True)
@given(random_grammars())
def test_starter_productions_agree_with_first(grammar):
    """starter_production exists exactly for (N, t) pairs with t in FIRST(N)."""
    analysis = GrammarAnalysis(grammar)
    for nonterminal in grammar.nonterminals:
        if nonterminal == grammar.augmented_start:
            continue
        for name in TERMINALS:
            terminal = Terminal(name)
            step = analysis.starter_production(nonterminal, terminal)
            if terminal in analysis.first[nonterminal]:
                assert step is not None
                production, position = step
                assert production.lhs == nonterminal
                # The prefix before the pivot must be nullable.
                for symbol in production.rhs[:position]:
                    assert symbol in analysis.nullable
            else:
                assert step is None


@settings(max_examples=30, deadline=None, derandomize=True)
@given(random_grammars())
def test_first_symbols_contains_first_terminals(grammar):
    """Symbol-level FIRST restricted to terminals equals classic FIRST."""
    analysis = GrammarAnalysis(grammar)
    for nonterminal in grammar.nonterminals:
        terminal_part = {
            s for s in analysis.first_symbols[nonterminal] if s.is_terminal
        }
        assert terminal_part == set(analysis.first[nonterminal])
