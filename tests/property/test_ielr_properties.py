"""Property-based tests on the minimal-LR(1) construction and compaction.

The headline properties the issue battery demands, each over a few
hundred sampled random grammars:

* the minimal automaton has **exactly** the canonical LR(1) raw conflict
  set (no conflict manufactured, none lost);
* state counts obey the lattice sandwich LALR <= IELR <= canonical;
* the compact serialization decodes to the identical automaton.

The LALR-relative properties hold for fully productive grammars (LR(1)
closure prunes dead items, so nonproductive regions make the canonical
collection structurally smaller than the LR(0) one); those tests skip
the occasional nonproductive sample, mirroring the guard in the
differential oracle.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.automaton import (
    LR1Automaton,
    build_ielr,
    build_lalr,
    canonical_conflict_signatures,
    conflict_signatures,
)
from repro.automaton.serialize import dump_automaton, load_automaton
from repro.grammar import GrammarBuilder

NONTERMINALS = ["n0", "n1", "n2"]
TERMINALS = ["a", "b", "c"]

MAX_LR1_STATES = 1500


@st.composite
def random_grammars(draw):
    builder = GrammarBuilder("random")
    for lhs in NONTERMINALS:
        count = draw(st.integers(min_value=1, max_value=3))
        for _ in range(count):
            length = draw(st.integers(min_value=0, max_value=3))
            rhs = [
                draw(st.sampled_from(NONTERMINALS + TERMINALS))
                for _ in range(length)
            ]
            builder.rule(lhs, rhs)
    return builder.build(start="n0")


def canonical(grammar) -> LR1Automaton | None:
    try:
        return LR1Automaton(grammar, max_states=MAX_LR1_STATES)
    except RuntimeError:
        return None


@settings(max_examples=200, deadline=None, derandomize=True)
@given(random_grammars())
def test_ielr_conflicts_exactly_canonical(grammar):
    """The defining property: splitting removes every manufactured
    conflict and introduces none."""
    lr1 = canonical(grammar)
    if lr1 is None:
        assume(False)
        return
    ielr = build_ielr(grammar, lr1=lr1)
    assert conflict_signatures(ielr) == canonical_conflict_signatures(lr1)


@settings(max_examples=200, deadline=None, derandomize=True)
@given(random_grammars())
def test_canonical_conflicts_within_lalr(grammar):
    """Merging only ever adds conflicts: canonical signatures are a
    subset of the LALR automaton's."""
    assume(not grammar.nonproductive_nonterminals)
    lr1 = canonical(grammar)
    if lr1 is None:
        assume(False)
        return
    assert canonical_conflict_signatures(lr1) <= conflict_signatures(
        build_lalr(grammar)
    )


@settings(max_examples=200, deadline=None, derandomize=True)
@given(random_grammars())
def test_state_count_sandwich(grammar):
    assume(not grammar.nonproductive_nonterminals)
    lr1 = canonical(grammar)
    if lr1 is None:
        assume(False)
        return
    lalr = build_lalr(grammar)
    ielr = build_ielr(grammar, lr1=lr1)
    assert len(lalr.states) <= len(ielr.states) <= len(lr1.states)
    if not ielr.splits:
        assert len(ielr.states) == len(lalr.states)


@settings(max_examples=200, deadline=None, derandomize=True)
@given(random_grammars())
def test_compact_serialization_decodes_identically(grammar):
    """Compacted tables decode to the same action/goto/lookahead maps as
    the flat encoding."""
    automaton = build_lalr(grammar)
    flat = load_automaton(dump_automaton(automaton, compact=False))
    compact = load_automaton(dump_automaton(automaton, compact=True))
    assert compact.lookahead_masks == flat.lookahead_masks
    assert len(compact.states) == len(flat.states)
    for original, decoded in zip(flat.states, compact.states):
        assert original.kernel == decoded.kernel
        assert {str(s): t.id for s, t in original.transitions.items()} == {
            str(s): t.id for s, t in decoded.transitions.items()
        }
    flat_tables = flat.tables
    compact_tables = compact.tables
    assert compact_tables.goto == flat_tables.goto
    for flat_row, compact_row in zip(flat_tables.action, compact_tables.action):
        assert compact_row == flat_row
