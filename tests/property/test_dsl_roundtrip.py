"""Round-trip properties of the grammar DSL over fuzzer-generated CFGs.

The textual DSL is the fuzz harness's failure-report format: a shrunk
grammar is emitted with :func:`~repro.grammar.dump_grammar` and must
reload into exactly the grammar that failed, or the report is useless.
These properties pin that contract over the same distribution the fuzz
campaigns draw from (:func:`repro.verify.grammar_strategy`).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.grammar import dump_grammar, load_grammar
from repro.verify import FuzzConfig, GrammarFuzzer, grammar_strategy

#: A distribution with every feature on: epsilon rules, injectors,
#: precedence declarations, and %prec overrides all appear.
FULL_CONFIG = FuzzConfig(injector_probability=0.7, precedence_probability=0.6)


def _production_triples(grammar):
    return [
        (str(p.lhs), tuple(str(s) for s in p.rhs), p.prec_override)
        for p in grammar.user_productions()
    ]


@settings(max_examples=50, deadline=None, derandomize=True)
@given(grammar_strategy(FULL_CONFIG))
def test_load_emit_preserves_grammar(grammar):
    """load(emit(g)) preserves productions, start symbol, and precedence."""
    reloaded = load_grammar(dump_grammar(grammar), name=grammar.name)
    assert _production_triples(reloaded) == _production_triples(grammar)
    assert reloaded.start == grammar.start
    assert reloaded.precedence == grammar.precedence


@settings(max_examples=50, deadline=None, derandomize=True)
@given(grammar_strategy(FULL_CONFIG))
def test_emit_load_idempotent(grammar):
    """emit(load(emit(g))) is a fixed point: the DSL text stabilises."""
    text = dump_grammar(grammar)
    again = dump_grammar(load_grammar(text, name=grammar.name))
    assert again == text


@settings(max_examples=30, deadline=None, derandomize=True)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_generate_is_pure(seed):
    """The fuzzer is a pure function of (config, seed) — the property
    every `reproduce: --fuzz 1 --seed S` line in a failure report relies
    on."""
    fuzzer = GrammarFuzzer(FULL_CONFIG)
    first, second = fuzzer.generate(seed), fuzzer.generate(seed)
    assert _production_triples(first) == _production_triples(second)
    assert first.precedence == second.precedence
    assert first.start == second.start
