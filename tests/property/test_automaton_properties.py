"""Property-based tests on LR automaton construction."""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.automaton import LR1Automaton, build_lalr
from repro.grammar import GrammarBuilder

NONTERMINALS = ["n0", "n1", "n2"]
TERMINALS = ["a", "b", "c"]


@st.composite
def random_grammars(draw):
    builder = GrammarBuilder("random")
    for lhs in NONTERMINALS:
        count = draw(st.integers(min_value=1, max_value=3))
        for _ in range(count):
            length = draw(st.integers(min_value=0, max_value=3))
            rhs = [
                draw(st.sampled_from(NONTERMINALS + TERMINALS))
                for _ in range(length)
            ]
            builder.rule(lhs, rhs)
    return builder.build(start="n0")


@settings(max_examples=25, deadline=None, derandomize=True)
@given(random_grammars())
def test_lalr_lookaheads_equal_merged_lr1(grammar):
    """The fundamental LALR property: per LR(0) core, LALR lookaheads are
    the union of canonical LR(1) lookaheads."""
    lalr = build_lalr(grammar)
    try:
        lr1 = LR1Automaton(grammar, max_states=1500)
    except RuntimeError:
        assume(False)  # canonical construction exploded; skip
        return
    merged = lr1.merged_lookaheads()
    lr1_cores = {state.core() for state in lr1.states}
    for state in lalr.states:
        core = frozenset(state.items)
        if core not in lr1_cores:
            continue  # unreachable under LR(1)? cannot happen; defensive
        for item in state.items:
            assert lalr.lookahead(state, item) == merged[(core, item)]


@settings(max_examples=25, deadline=None, derandomize=True)
@given(random_grammars())
def test_transitions_partition_items(grammar):
    """Every non-reduce item of a state advances into the successor state."""
    automaton = build_lalr(grammar)
    for state in automaton.states:
        for item in state.items:
            symbol = item.next_symbol
            if symbol is None:
                continue
            successor = state.transitions[symbol]
            assert item.advance() in successor.kernel


@settings(max_examples=25, deadline=None, derandomize=True)
@given(random_grammars())
def test_reverse_lookups_invert_forward_edges(grammar):
    automaton = build_lalr(grammar)
    lookups = automaton.lookups
    for state in automaton.states:
        for item in state.items:
            for pred_state, pred_item in lookups.reverse_transitions(state, item):
                assert pred_item.advance() == item
                assert pred_state.transitions[item.previous_symbol] is state
            for parent in lookups.reverse_production_steps(state, item):
                assert parent.next_symbol == item.production.lhs


@settings(max_examples=25, deadline=None, derandomize=True)
@given(random_grammars())
def test_conflicts_iff_nondeterminism(grammar):
    """A state/terminal pair is conflicted iff it admits two distinct moves."""
    automaton = build_lalr(grammar)
    conflicted = {(c.state_id, c.terminal) for c in automaton.conflicts}
    for state in automaton.states:
        for terminal in automaton.grammar.terminals:
            moves = 0
            if terminal in state.transitions:
                moves += 1
            for item in state.reduce_items():
                if item.production.index == 0:
                    continue
                if terminal in automaton.lookahead(state, item):
                    moves += 1
            if moves >= 2:
                assert (state.id, terminal) in conflicted
            else:
                assert (state.id, terminal) not in conflicted
