"""Unit tests for the cross-construction differential oracle."""

import pytest

from repro.corpus import load
from repro.grammar import load_grammar
from repro.verify import DifferentialOracle


class TestConsistentGrammars:
    """Known-good grammars must produce zero disagreements."""

    @pytest.mark.parametrize(
        "name", ["figure1", "figure3", "figure7", "abcd", "xi", "SQL.1"]
    )
    def test_corpus_grammar_consistent(self, name):
        report = DifferentialOracle(load(name), seed=7).check()
        assert report.ok, report.describe()
        assert report.samples_checked > 0

    def test_conflict_free_grammar_consistent(self, expr_grammar):
        report = DifferentialOracle(expr_grammar).check()
        assert report.ok, report.describe()

    def test_epsilon_cycle_grammar_consistent(self):
        # The shape that used to livelock the LR driver: the oracle must
        # classify it without hanging or disagreeing.
        grammar = load_grammar(
            "n0 : %empty | a d n0 n2 | n0 n0 d a ;"
            "n2 : d n2 b a | %empty | n2 n2 ;"
        )
        report = DifferentialOracle(grammar, seed=3).check()
        assert report.ok, report.describe()


class TestLr1StateCap:
    def test_cap_skips_rather_than_fails(self):
        report = DifferentialOracle(load("figure1"), max_lr1_states=1).check()
        assert report.ok
        assert any("lr1-agreement" in reason for reason in report.skipped)


class TestDescribe:
    def test_describe_mentions_grammar_and_status(self):
        report = DifferentialOracle(load("figure3")).check()
        text = report.describe()
        assert "figure3" in text
        assert "consistent" in text


class TestIELRAgreement:
    """The minimal-LR(1) construction checked as a fourth pipeline."""

    @pytest.mark.parametrize("name", ["nonlalr01", "nonlalr02"])
    def test_nonlalr_grammar_consistent(self, name):
        """The grammars whose whole point is LALR/LR(1) divergence must
        still satisfy every cross-construction invariant."""
        report = DifferentialOracle(load(name), seed=5).check()
        assert report.ok, report.describe()
        assert not any("ielr" in reason for reason in report.skipped)

    def test_broken_splitter_detected(self, monkeypatch):
        """If the minimal construction stopped splitting, the oracle
        must flag the manufactured conflicts it then carries."""
        import repro.automaton.ielr as ielr_module
        from repro.automaton import build_lalr

        monkeypatch.setattr(
            ielr_module, "build_ielr", lambda grammar, **kw: build_lalr(grammar)
        )
        report = DifferentialOracle(load("nonlalr01"), seed=5).check()
        assert not report.ok
        assert any(
            d.check == "ielr-conflict-signatures" for d in report.disagreements
        )

    def test_nonproductive_grammar_skips_lalr_invariants(self):
        grammar = load_grammar("n0 : 'a' | 'b' n1 ;\nn1 : n1 'c' ;")
        report = DifferentialOracle(grammar, seed=2).check()
        assert report.ok, report.describe()
        assert any("ielr-agreement" in reason for reason in report.skipped)
