"""Unit tests for the independent counterexample validator."""

import pytest

from repro.core import CounterexampleFinder
from repro.core.counterexample import Counterexample
from repro.core.derivation import Derivation
from repro.corpus import load
from repro.verify import CounterexampleValidator, validate_counterexample


@pytest.fixture(scope="module")
def figure1():
    return load("figure1")


@pytest.fixture(scope="module")
def figure1_reports(figure1):
    finder = CounterexampleFinder(figure1, time_limit=10.0)
    return {
        str(r.conflict.terminal): r.counterexample
        for r in finder.explain_all().reports
    }


@pytest.fixture(scope="module")
def figure3_nonunifying():
    finder = CounterexampleFinder(load("figure3"), time_limit=10.0)
    return finder.explain_all().reports[0].counterexample


class TestGenuineCounterexamples:
    @pytest.mark.parametrize("terminal", ["+", "ELSE", "DIGIT"])
    def test_figure1_unifying_validate(self, figure1, figure1_reports, terminal):
        validator = CounterexampleValidator(figure1, glr_check=True)
        result = validator.validate(figure1_reports[terminal])
        assert result.kind == "unifying"
        assert result.ok, result.describe()
        assert "earley-ambiguous" in result.passed
        # The GLR cross-check over rebuilt precedence-free tables agrees.
        assert "glr-ambiguous" in result.passed

    def test_figure3_nonunifying_validate(self, figure3_nonunifying):
        result = validate_counterexample(
            load("figure3"), figure3_nonunifying, glr_check=True
        )
        assert result.kind == "nonunifying"
        assert result.ok, result.describe()
        assert "shared-prefix" in result.passed
        assert "earley-derives-1" in result.passed
        assert "earley-derives-2" in result.passed


class TestCorruptedCounterexamples:
    """Each structural lie a broken finder could tell is caught."""

    def test_identical_derivations_rejected(self, figure1, figure1_reports):
        cex = figure1_reports["+"]
        corrupt = Counterexample(
            conflict=cex.conflict,
            unifying=True,
            nonterminal=cex.nonterminal,
            derivation1=cex.derivation1,
            derivation2=cex.derivation1,
        )
        result = validate_counterexample(figure1, corrupt)
        assert not result.ok
        assert any("derivations-distinct" in f for f in result.failures)

    def test_truncated_derivation_rejected(self, figure1, figure1_reports):
        cex = figure1_reports["+"]
        root = cex.derivation1
        chopped = Derivation(root.symbol, children=(), production=root.production)
        corrupt = Counterexample(
            conflict=cex.conflict,
            unifying=True,
            nonterminal=cex.nonterminal,
            derivation1=chopped,
            derivation2=cex.derivation2,
        )
        result = validate_counterexample(figure1, corrupt)
        assert not result.ok
        assert any("derivation1-structure" in f for f in result.failures)

    def test_foreign_production_rejected(self, figure1, figure1_reports):
        # A derivation that expands by a production of a different grammar
        # (here: one whose identity does not match the grammar's table).
        other = load("figure3")
        cex = figure1_reports["+"]
        fake = Derivation(
            other.productions[1].lhs,
            children=tuple(
                Derivation(symbol) for symbol in other.productions[1].rhs
            ),
            production=other.productions[1],
        )
        corrupt = Counterexample(
            conflict=cex.conflict,
            unifying=True,
            nonterminal=cex.nonterminal,
            derivation1=fake,
            derivation2=cex.derivation2,
        )
        result = validate_counterexample(figure1, corrupt)
        assert not result.ok
        assert any("derivation1-structure" in f for f in result.failures)

    def test_nonunifying_passed_off_as_unifying(self, figure3_nonunifying):
        cex = figure3_nonunifying
        corrupt = Counterexample(
            conflict=cex.conflict,
            unifying=True,
            nonterminal=cex.nonterminal,
            derivation1=cex.derivation1,
            derivation2=cex.derivation2,
        )
        result = validate_counterexample(load("figure3"), corrupt)
        assert not result.ok

    def test_unambiguous_form_claim_rejected(self, figure1, figure1_reports):
        # Both derivations replayed fine and agree — but on a grammar
        # where the form has a single derivation, Earley must refuse to
        # certify ambiguity. Simulate by validating the ELSE example
        # against a dangling-else-free variant? Cheaper: reuse the '+'
        # example but lie about the unifying nonterminal so the Earley
        # recount runs from the wrong root.
        cex = figure1_reports["+"]
        wrong_root = next(
            nt
            for nt in figure1.nonterminals
            if nt not in (cex.nonterminal, figure1.augmented_start)
            and str(nt) != str(cex.nonterminal)
        )
        corrupt = Counterexample(
            conflict=cex.conflict,
            unifying=True,
            nonterminal=wrong_root,
            derivation1=cex.derivation1,
            derivation2=cex.derivation2,
        )
        result = validate_counterexample(figure1, corrupt)
        assert not result.ok
        assert any("roots-unify" in f for f in result.failures)


class TestSkips:
    def test_glr_checks_optional(self, figure1, figure1_reports):
        validator = CounterexampleValidator(figure1, glr_check=False)
        result = validator.validate(figure1_reports["+"])
        assert result.ok
        assert not any("glr" in name for name in result.passed)

    def test_tiny_step_budget_skips_not_fails(self, figure1, figure1_reports):
        validator = CounterexampleValidator(figure1, earley_step_budget=1)
        result = validator.validate(figure1_reports["+"])
        # Budget exhaustion must degrade to a skip, never a rejection.
        assert result.ok
        assert any("earley-ambiguous" in s for s in result.skipped)
