"""Tests for the tracing/metrics layer."""

import time

import pytest

from repro.perf import metrics
from repro.perf.metrics import SCHEMA, MetricsCollector


class TestSpans:
    def test_nested_spans_aggregate_under_slash_paths(self):
        collector = MetricsCollector()
        with collector.span("outer"):
            with collector.span("inner"):
                pass
            with collector.span("inner"):
                pass
        assert collector.span_count("outer") == 1
        assert collector.span_count("outer/inner") == 2
        assert collector.span_total("outer/inner") >= 0.0
        # The inner path only exists nested; no bare "inner" root.
        assert collector.span_count("inner") == 0

    def test_sibling_spans_do_not_nest(self):
        collector = MetricsCollector()
        with collector.span("a"):
            pass
        with collector.span("b"):
            pass
        assert collector.span_count("a") == 1
        assert collector.span_count("b") == 1
        assert collector.span_count("a/b") == 0

    def test_span_reentry_after_exception(self):
        collector = MetricsCollector()
        with pytest.raises(RuntimeError):
            with collector.span("outer"):
                raise RuntimeError("boom")
        # The stack unwound: a new span is a root again, not outer/next.
        with collector.span("next"):
            pass
        assert collector.span_count("next") == 1

    def test_counters(self):
        collector = MetricsCollector()
        collector.count("things")
        collector.count("things", 4)
        assert collector.counters["things"] == 5


class TestModuleState:
    def test_disabled_by_default_and_null_span_is_shared(self):
        assert metrics.active() is None
        span = metrics.span("anything")
        assert span is metrics.span("other")  # the shared null span
        with span:
            pass  # no-op
        metrics.count("anything")  # swallowed

    def test_enable_disable_round_trip(self):
        collector = metrics.enable()
        try:
            assert metrics.active() is collector
            with metrics.span("phase"):
                metrics.count("hits")
            assert collector.span_count("phase") == 1
            assert collector.counters["hits"] == 1
        finally:
            assert metrics.disable() is collector
        assert metrics.active() is None

    def test_collecting_restores_previous_collector(self):
        outer = metrics.enable()
        try:
            with metrics.collecting() as inner:
                metrics.count("seen")
            assert metrics.active() is outer
            assert inner.counters["seen"] == 1
            assert "seen" not in outer.counters
        finally:
            metrics.disable()

    def test_disabled_overhead_is_negligible(self):
        # The null span must stay cheap enough for per-conflict hot
        # paths: 50k disabled spans well under 200ms even on slow CI.
        start = time.perf_counter()
        for _ in range(50_000):
            with metrics.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 0.2


class TestSerialization:
    def test_json_round_trip(self):
        collector = MetricsCollector()
        with collector.span("a"):
            with collector.span("b"):
                pass
        collector.count("n", 7)
        data = collector.to_json()
        assert data["schema"] == SCHEMA
        restored = MetricsCollector.from_json(data)
        assert restored.span_count("a/b") == 1
        assert restored.counters["n"] == 7
        assert restored.to_json() == data

    def test_from_json_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            MetricsCollector.from_json({"schema": "bogus/9"})

    def test_merge_sums_spans_and_counters(self):
        left = MetricsCollector()
        right = MetricsCollector()
        for collector in (left, right):
            with collector.span("phase"):
                pass
            collector.count("n", 2)
        left.merge(right)
        assert left.span_count("phase") == 2
        assert left.counters["n"] == 4

    def test_render_mentions_spans_and_counters(self):
        collector = MetricsCollector()
        with collector.span("automaton"):
            pass
        collector.count("automaton.states", 3)
        text = collector.render()
        assert "automaton" in text
        assert "automaton.states" in text


class TestInstrumentation:
    def test_automaton_build_emits_expected_phases(self, figure1):
        from repro.automaton import build_lalr

        with metrics.collecting() as collector:
            automaton = build_lalr(figure1)
            _ = automaton.tables
        assert collector.span_count("automaton") == 1
        assert collector.span_count("automaton/lr0") == 1
        assert collector.span_count("automaton/lookaheads") == 1
        assert collector.span_count("tables") == 1
        assert collector.counters["automaton.states"] == len(automaton.states)
        assert collector.counters["automaton.conflicts"] == len(
            automaton.conflicts
        )

    def test_finder_emits_explain_spans_and_search_counters(self, figure1):
        from repro.core import CounterexampleFinder

        with metrics.collecting() as collector:
            summary = CounterexampleFinder(figure1).explain_all()
        assert collector.span_count("explain") == summary.num_conflicts
        assert collector.span_count("explain/search") >= 1
        assert collector.counters["search.configurations.explored"] > 0


class TestHotspots:
    def _fabricated(self):
        # explain: 1.0s total, 0.7s in children -> 0.3s exclusive.
        collector = MetricsCollector()
        collector.spans = {
            "explain": [2, 1.0],
            "explain/lasg": [2, 0.5],
            "explain/search": [2, 0.2],
            "explain/search/expand": [10, 0.15],
            "automaton": [1, 0.1],
        }
        return collector

    def test_exclusive_time_subtracts_direct_children_only(self):
        ranked = dict(
            (path, exclusive)
            for path, exclusive, _total in self._fabricated().hotspots(10)
        )
        assert ranked["explain/lasg"] == pytest.approx(0.5)
        assert ranked["explain"] == pytest.approx(0.3)
        # search keeps only what its own child did not consume.
        assert ranked["explain/search"] == pytest.approx(0.05)
        assert ranked["explain/search/expand"] == pytest.approx(0.15)
        assert ranked["automaton"] == pytest.approx(0.1)

    def test_sorted_descending_and_truncated(self):
        top = self._fabricated().hotspots(2)
        assert len(top) == 2
        assert [path for path, _e, _t in top] == ["explain/lasg", "explain"]
        exclusives = [exclusive for _p, exclusive, _t in top]
        assert exclusives == sorted(exclusives, reverse=True)

    def test_inclusive_total_reported_alongside(self):
        top = {path: total for path, _e, total in self._fabricated().hotspots(10)}
        assert top["explain"] == pytest.approx(1.0)

    def test_children_exceeding_parent_clamp_to_zero(self):
        collector = MetricsCollector()
        collector.spans = {"a": [1, 0.1], "a/b": [1, 0.2]}
        ranked = dict((p, e) for p, e, _t in collector.hotspots(10))
        assert "a" not in ranked  # negative exclusive time is dropped
        assert ranked["a/b"] == pytest.approx(0.2)

    def test_real_profile_surfaces_lasg(self, figure1):
        from repro.core import CounterexampleFinder

        with metrics.collecting() as collector:
            CounterexampleFinder(figure1).explain_all()
        paths = [path for path, _e, _t in collector.hotspots(10)]
        assert paths  # something was hot
        assert any(path.startswith("explain") for path in paths)
