"""Tests for the benchmark runner and the regression gate."""

import copy
import json

import pytest

from repro.perf.bench import (
    FAST_GRAMMARS,
    SCHEMA,
    compare_reports,
    main,
    run_suite,
)


@pytest.fixture(scope="module")
def tiny_report():
    # Two small grammars, one repeat: seconds, not minutes.
    return run_suite(["figure7", "abcd"], repeats=1, time_limit=0.5)


class TestRunSuite:
    def test_schema_and_shape(self, tiny_report):
        assert tiny_report["schema"] == SCHEMA
        assert tiny_report["repeats"] == 1
        assert tiny_report["calibration_s"] > 0
        assert set(tiny_report["grammars"]) == {"figure7", "abcd"}
        entry = tiny_report["grammars"]["figure7"]
        assert entry["conflicts"] == 2
        assert entry["total_s"] > 0
        assert "automaton" in entry["phases"]
        assert "explain" in entry["phases"]
        assert entry["counters"]["automaton.states"] > 0

    def test_json_round_trip(self, tiny_report):
        clone = json.loads(json.dumps(tiny_report))
        assert clone == tiny_report

    def test_fast_grammar_set_resolves(self):
        from repro.corpus import registry

        known = {spec.name for spec in registry.all_specs()}
        assert set(FAST_GRAMMARS) <= known


class TestCompare:
    def test_identical_reports_pass(self, tiny_report):
        failures, lines = compare_reports(tiny_report, tiny_report)
        assert failures == []
        assert any("figure7" in line for line in lines)

    def test_injected_regression_fails(self, tiny_report):
        slower = copy.deepcopy(tiny_report)
        entry = slower["grammars"]["figure7"]
        entry["total_s"] = tiny_report["grammars"]["figure7"]["total_s"] * 10 + 1.0
        failures, _ = compare_reports(tiny_report, slower)
        assert any("figure7/total" in failure for failure in failures)

    def test_small_absolute_regressions_tolerated(self, tiny_report):
        # A 10x ratio on a microsecond phase is noise, not a regression.
        slower = copy.deepcopy(tiny_report)
        for entry in slower["grammars"].values():
            entry["phases"] = {
                phase: value * 10 for phase, value in entry["phases"].items()
            }
        failures, _ = compare_reports(
            tiny_report, slower, threshold=2.0, min_delta=1e9
        )
        assert failures == []

    def test_calibration_normalisation(self, tiny_report):
        # Same timings on a machine measured 2x slower: normalised to
        # half, so nothing regresses.
        slower_machine = copy.deepcopy(tiny_report)
        slower_machine["calibration_s"] = tiny_report["calibration_s"] * 2
        failures, _ = compare_reports(tiny_report, slower_machine)
        assert failures == []

    def test_schema_mismatch_rejected(self, tiny_report):
        with pytest.raises(ValueError):
            compare_reports({"schema": "other/1"}, tiny_report)

    def test_missing_grammar_is_informational(self, tiny_report):
        current = copy.deepcopy(tiny_report)
        del current["grammars"]["abcd"]
        failures, lines = compare_reports(tiny_report, current)
        assert failures == []
        assert any("missing" in line for line in lines)


class TestCli:
    def test_run_and_compare_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert (
            main(
                [
                    "run",
                    "--out",
                    str(out),
                    "--repeats",
                    "1",
                    "--time-limit",
                    "0.5",
                    "--grammars",
                    "figure7",
                ]
            )
            == 0
        )
        report = json.loads(out.read_text())
        assert report["schema"] == SCHEMA
        assert main(["compare", str(out), str(out)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_exit_code_on_regression(self, tmp_path):
        out = tmp_path / "base.json"
        main(
            [
                "run",
                "--out",
                str(out),
                "--repeats",
                "1",
                "--time-limit",
                "0.5",
                "--grammars",
                "figure7",
            ]
        )
        report = json.loads(out.read_text())
        report["grammars"]["figure7"]["total_s"] = (
            report["grammars"]["figure7"]["total_s"] * 100 + 1.0
        )
        inflated = tmp_path / "inflated.json"
        inflated.write_text(json.dumps(report))
        assert main(["compare", str(out), str(inflated)]) == 1


class TestImproved:
    """The inverse gate: required speedups must hold, not just no-regress."""

    def _reports(self, tiny_report, speedup):
        from repro.perf.bench import assert_improved

        faster = copy.deepcopy(tiny_report)
        for entry in faster["grammars"].values():
            entry["total_s"] /= speedup
            entry["phases"] = {
                phase: value / speedup
                for phase, value in entry["phases"].items()
            }
        return assert_improved(
            tiny_report,
            faster,
            targets=[("figure7", "explain/lasg"), ("figure7", "total")],
            min_ratio=1.5,
        )

    def test_sufficient_speedup_passes(self, tiny_report):
        failures, lines = self._reports(tiny_report, speedup=2.0)
        assert failures == []
        assert any("OK" in line for line in lines)

    def test_insufficient_speedup_fails(self, tiny_report):
        failures, _ = self._reports(tiny_report, speedup=1.1)
        assert any("explain/lasg" in failure for failure in failures)
        assert any("figure7/total" in failure for failure in failures)

    def test_unchanged_report_fails_the_gate(self, tiny_report):
        from repro.perf.bench import assert_improved

        failures, _ = assert_improved(
            tiny_report,
            tiny_report,
            targets=[("figure7", "explain/lasg")],
            min_ratio=1.5,
        )
        assert failures

    def test_calibration_normalisation(self, tiny_report):
        from repro.perf.bench import assert_improved

        # Identical timings measured on a machine calibrated 2x slower
        # normalise to a 2x speedup.
        slower_machine = copy.deepcopy(tiny_report)
        slower_machine["calibration_s"] = tiny_report["calibration_s"] * 2
        failures, _ = assert_improved(
            tiny_report,
            slower_machine,
            targets=[("figure7", "total")],
            min_ratio=1.5,
        )
        assert failures == []

    def test_missing_target_fails(self, tiny_report):
        from repro.perf.bench import assert_improved

        failures, _ = assert_improved(
            tiny_report,
            tiny_report,
            targets=[("nope", "total")],
            min_ratio=1.5,
        )
        assert any("nope" in failure for failure in failures)

    def test_schema_mismatch_rejected(self, tiny_report):
        from repro.perf.bench import assert_improved

        with pytest.raises(ValueError):
            assert_improved({"schema": "other/1"}, tiny_report, targets=[])

    def test_cli_improved_gate(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(tiny := run_suite(["figure7"], repeats=1)))
        faster = copy.deepcopy(tiny)
        for entry in faster["grammars"].values():
            entry["phases"] = {
                phase: value / 3 for phase, value in entry["phases"].items()
            }
        curr = tmp_path / "curr.json"
        curr.write_text(json.dumps(faster))
        assert (
            main(
                [
                    "improved",
                    str(base),
                    str(curr),
                    "--target",
                    "figure7:explain/lasg",
                ]
            )
            == 0
        )
        assert "OK" in capsys.readouterr().out
        # The unimproved report fails the same gate.
        assert (
            main(
                [
                    "improved",
                    str(base),
                    str(base),
                    "--target",
                    "figure7:explain/lasg",
                ]
            )
            == 1
        )
        assert "required improvements not met" in capsys.readouterr().err
