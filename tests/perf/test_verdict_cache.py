"""Ambiguity-verdict memoization in the content-addressed cache."""

import json

import pytest

import repro.perf.cache as cache_module
from repro.analysis import ANALYSIS_VERSION, AmbiguityVerdict, analyze_conflicts
from repro.automaton import build_lalr
from repro.automaton.serialize import load_automaton
from repro.corpus import load
from repro.perf import metrics
from repro.perf.cache import (
    AutomatonCache,
    analyze_conflicts_cached,
    grammar_fingerprint,
)


@pytest.fixture
def cache(tmp_path):
    return AutomatonCache(tmp_path)


@pytest.fixture
def genuine():
    return load("nonlalr03-genuine")


class TestVerdictRoundTrip:
    def test_put_then_get_identical(self, cache, genuine):
        automaton = build_lalr(genuine)
        verdicts = analyze_conflicts(automaton)
        assert cache.put_verdicts(genuine, automaton, verdicts) is not None
        assert cache.get_verdicts(genuine, automaton) == verdicts

    def test_memoized_hit_skips_the_walk(self, cache, genuine, monkeypatch):
        automaton = build_lalr(genuine)
        first = analyze_conflicts_cached(automaton, cache)

        def explode(*args, **kwargs):
            raise AssertionError("walked despite a cached verdict block")

        monkeypatch.setattr(cache_module, "analyze_conflicts", explode)
        second = analyze_conflicts_cached(automaton, cache)
        assert second == first

    def test_none_cache_is_a_passthrough(self, genuine):
        automaton = build_lalr(genuine)
        verdicts = analyze_conflicts_cached(automaton, None)
        assert verdicts == analyze_conflicts(automaton)

    def test_non_default_options_bypass_the_cache(self, cache, genuine):
        # max_nodes=1 verdicts must not be served from (or poison) the
        # default-budget entry.
        automaton = build_lalr(genuine)
        analyze_conflicts_cached(automaton, cache)
        starved = analyze_conflicts_cached(automaton, cache, max_nodes=1)
        assert starved == analyze_conflicts(automaton, max_nodes=1)
        assert cache.get_verdicts(genuine, automaton) == analyze_conflicts(
            automaton
        )

    def test_ambiguous_witness_survives_the_round_trip(self, cache, genuine):
        automaton = build_lalr(genuine)
        analyze_conflicts_cached(automaton, cache)
        restored = cache.get_verdicts(genuine, automaton)
        (verdict,) = restored.values()
        assert verdict.verdict is AmbiguityVerdict.AMBIGUOUS
        assert verdict.witness is not None
        assert all(t.is_terminal for t in verdict.witness)

    def test_hit_counter_moves(self, cache, genuine):
        automaton = build_lalr(genuine)
        analyze_conflicts_cached(automaton, cache)
        with metrics.collecting() as collector:
            analyze_conflicts_cached(automaton, cache)
        assert collector.counters.get("cache.verdicts.hit") == 1


class TestFormatCompatibility:
    def test_verdict_block_invisible_to_automaton_reader(self, cache, genuine):
        # A verdict-bearing entry must stay loadable by the plain
        # serialization reader — the block is an ignored extra key.
        automaton = build_lalr(genuine)
        analyze_conflicts_cached(automaton, cache)
        path = cache._path_for(grammar_fingerprint(genuine))
        restored = load_automaton(path.read_text())
        assert [str(c) for c in restored.conflicts] == [
            str(c) for c in automaton.conflicts
        ]

    def test_entry_without_block_is_a_verdict_miss(self, cache, genuine):
        automaton = build_lalr(genuine)
        cache.put(genuine, automaton)
        assert cache.get_verdicts(genuine, automaton) is None

    def test_wrong_analysis_version_is_a_miss(self, cache, genuine):
        automaton = build_lalr(genuine)
        analyze_conflicts_cached(automaton, cache)
        path = cache._path_for(grammar_fingerprint(genuine))
        document = json.loads(path.read_text())
        document["ambiguity"]["analysis_version"] = ANALYSIS_VERSION + 1
        path.write_text(json.dumps(document))
        assert cache.get_verdicts(genuine, automaton) is None

    def test_conflict_mismatch_is_a_miss(self, cache, genuine):
        automaton = build_lalr(genuine)
        analyze_conflicts_cached(automaton, cache)
        path = cache._path_for(grammar_fingerprint(genuine))
        document = json.loads(path.read_text())
        document["ambiguity"]["verdicts"][0]["state"] += 1
        path.write_text(json.dumps(document))
        assert cache.get_verdicts(genuine, automaton) is None

    def test_partial_verdict_map_not_stored(self, cache):
        grammar = load("nonlalr01")
        automaton = build_lalr(grammar)
        assert len(automaton.tables.conflicts) == 2
        verdicts = analyze_conflicts(automaton)
        partial = dict(list(verdicts.items())[:1])
        assert cache.put_verdicts(grammar, automaton, partial) is None
        assert cache.get_verdicts(grammar, automaton) is None

    def test_analysis_version_folds_into_the_fingerprint(self, genuine):
        # The fold means stale verdict blocks can never even be looked
        # up after an analysis-version bump: the whole key moves.
        payload_version = cache_module.ANALYSIS_VERSION
        fingerprint = grammar_fingerprint(genuine)
        assert f"a{payload_version}" not in fingerprint  # key is hashed
        assert len(fingerprint) == len(grammar_fingerprint(load("nonlalr01")))
