"""Tests for parallel per-conflict explanation.

The heavyweight guarantee — byte-identical reports across the whole
corpus — is marked slow (the CI bench job runs the fast subset on every
PR); the tier-1 tests cover the merge machinery, the pickling support it
stands on, and one real end-to-end grammar.
"""

import pickle

import pytest

from repro.core import CounterexampleFinder
from repro.core.derivation import DOT, Derivation, dleaf
from repro.core.report import safe_format_report
from repro.grammar import Nonterminal, Terminal
from repro.perf.parallel import explain_all_parallel, resolve_jobs


class TestPickling:
    def test_symbol_reinterns(self):
        terminal = Terminal("ID")
        assert pickle.loads(pickle.dumps(terminal)) is terminal
        nonterminal = Nonterminal("expr")
        assert pickle.loads(pickle.dumps(nonterminal)) is nonterminal

    def test_terminal_and_nonterminal_stay_distinct(self):
        assert pickle.loads(pickle.dumps(Terminal("x"))) is not Nonterminal("x")

    def test_dot_sentinel_survives_as_singleton(self):
        assert pickle.loads(pickle.dumps(DOT)) is DOT
        # ...also nested inside a derivation tree.
        leaf = dleaf(Terminal("a"))
        restored = pickle.loads(pickle.dumps((DOT, leaf)))
        assert restored[0] is DOT

    def test_derivation_hash_recomputed(self):
        derivation = dleaf(Nonterminal("expr"))
        clone = pickle.loads(pickle.dumps(derivation))
        assert clone == derivation
        assert hash(clone) == hash(derivation)

    def test_deep_derivation_round_trip(self, figure1):
        summary = CounterexampleFinder(figure1, time_limit=1.0).explain_all()
        report = summary.reports[0]
        clone = pickle.loads(pickle.dumps(report))
        assert safe_format_report(clone) == safe_format_report(report)
        assert isinstance(clone.counterexample.derivation1, Derivation)


class TestResolveJobs:
    def test_none_and_zero_mean_cpu_count(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestParallelEquality:
    def test_jobs1_falls_back_to_serial(self, figure1):
        serial = CounterexampleFinder(figure1).explain_all()
        parallel = explain_all_parallel(figure1, jobs=1)
        assert [safe_format_report(r) for r in serial.reports] == [
            safe_format_report(r) for r in parallel.reports
        ]

    def test_pool_reports_byte_identical(self, figure1):
        serial = CounterexampleFinder(figure1).explain_all()
        parallel = explain_all_parallel(figure1, jobs=2)
        assert [safe_format_report(r) for r in serial.reports] == [
            safe_format_report(r) for r in parallel.reports
        ]
        assert parallel.num_conflicts == serial.num_conflicts
        assert parallel.num_unifying == serial.num_unifying
        assert parallel.num_nonunifying == serial.num_nonunifying
        assert parallel.num_stub == serial.num_stub

    def test_token_is_rejected(self, figure1):
        from repro.robust.budget import CancellationToken

        with pytest.raises(ValueError):
            explain_all_parallel(figure1, jobs=2, token=CancellationToken())

    def test_worker_metrics_merge_into_parent(self, figure1):
        from repro.perf import metrics

        with metrics.collecting() as collector:
            summary = explain_all_parallel(figure1, jobs=2)
        assert collector.span_count("explain") == summary.num_conflicts
        assert collector.counters["parallel.tasks"] == summary.num_conflicts


@pytest.mark.slow
class TestCorpusEquality:
    """Byte-identical parallel reports on every corpus grammar.

    Grammars whose searches sit near the wall-clock budget can flip
    between unifying and timed-out under CPU contention, so the slow
    sweep runs with generous limits and skips the known conflict
    explosions (they take minutes serially; the per-PR gate covers the
    fast subset).
    """

    HEAVY = {"Java.2", "Java.4", "C.4", "Pascal.1", "java-ext1", "java-ext2"}

    def _names(self):
        from repro.corpus import registry

        return [
            spec.name
            for spec in registry.all_specs()
            if spec.name not in self.HEAVY
        ]

    def test_every_corpus_grammar(self):
        from repro.corpus import registry

        for name in self._names():
            grammar = registry.load(name)
            serial = CounterexampleFinder(grammar, time_limit=10.0).explain_all()
            parallel = explain_all_parallel(grammar, jobs=2, time_limit=10.0)
            assert [safe_format_report(r) for r in serial.reports] == [
                safe_format_report(r) for r in parallel.reports
            ], f"{name}: parallel reports differ from serial"
