"""Multi-process cache safety: racing writers, corrupt-entry quarantine."""

from __future__ import annotations

import json
import multiprocessing
import os

from repro.automaton import build_automaton
from repro.grammar import load_grammar
from repro.perf.cache import (
    MAX_QUARANTINED,
    AutomatonCache,
    build_automaton_cached,
    grammar_fingerprint,
)

GRAMMAR = """
%grammar cache-race
%start S
S : T | S T ;
T : X | Y ;
X : 'a' ;
Y : 'a' 'a' 'b' ;
"""


def _writer(directory: str, barrier) -> None:
    """Build-and-put from a fresh process, starting on the barrier."""
    grammar = load_grammar(GRAMMAR)
    cache = AutomatonCache(directory)
    barrier.wait(timeout=30.0)
    build_automaton_cached(grammar, cache)


class TestConcurrentWriters:
    def test_two_processes_same_fingerprint_one_valid_entry(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        workers = [
            ctx.Process(target=_writer, args=(str(tmp_path), barrier))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60.0)
            assert worker.exitcode == 0
        entries = sorted(tmp_path.glob("*.json"))
        assert len(entries) == 1
        # No temp droppings survive a completed race.
        assert list(tmp_path.glob("*.tmp")) == []
        # The surviving entry is intact and decodes to the automaton.
        grammar = load_grammar(GRAMMAR)
        reader = AutomatonCache(tmp_path)
        automaton = reader.get(grammar)
        assert automaton is not None
        assert reader.hits == 1
        json.loads(entries[0].read_text())  # well-formed on disk

    def test_concurrent_directory_removal_is_a_benign_miss(self, tmp_path):
        grammar = load_grammar(GRAMMAR)
        automaton = build_automaton(grammar)
        doomed = tmp_path / "swept"
        cache = AutomatonCache(doomed)

        # Simulate the sweep by making the parent unusable: point the
        # cache at a path whose parent is a *file*, so mkdir fails.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache.directory = blocker / "cache"
        cache.put(grammar, automaton)
        assert cache.write_failures == 1
        # The analysis itself is unaffected: a later read is just a miss.
        assert cache.get(grammar) is None
        assert cache.misses == 1


class TestQuarantine:
    def test_corrupt_entry_is_quarantined_then_rebuilt(self, tmp_path):
        grammar = load_grammar(GRAMMAR)
        cache = AutomatonCache(tmp_path)
        build_automaton_cached(grammar, cache)
        path = tmp_path / f"{grammar_fingerprint(grammar)}.json"
        path.write_text("{ torn garbage")

        assert cache.get(grammar) is None
        assert cache.quarantined == 1
        assert not path.exists()
        quarantine = list(tmp_path.glob("*.corrupt-*"))
        assert len(quarantine) == 1
        assert str(os.getpid()) in quarantine[0].name

        # The next cached build repopulates the entry; the quarantined
        # file is never mistaken for a live entry again.
        build_automaton_cached(grammar, cache)
        assert cache.get(grammar) is not None
        assert cache.info()["entries"] == 1
        assert cache.info()["quarantined"] == 1

    def test_quarantine_backlog_is_bounded(self, tmp_path):
        grammar = load_grammar(GRAMMAR)
        cache = AutomatonCache(tmp_path)
        fingerprint = grammar_fingerprint(grammar)
        for index in range(MAX_QUARANTINED + 3):
            path = tmp_path / f"{fingerprint}.json"
            path.write_text(f"corrupt #{index}")
            assert cache.get(grammar) is None
        assert cache.quarantined == MAX_QUARANTINED + 3
        backlog = list(tmp_path.glob("*.corrupt-*"))
        assert len(backlog) <= MAX_QUARANTINED

    def test_clear_removes_quarantine_files_too(self, tmp_path):
        grammar = load_grammar(GRAMMAR)
        cache = AutomatonCache(tmp_path)
        build_automaton_cached(grammar, cache)
        (tmp_path / f"{grammar_fingerprint(grammar)}.json").write_text("junk")
        assert cache.get(grammar) is None
        assert list(tmp_path.glob("*.corrupt-*"))
        removed = cache.clear()
        assert removed == 0  # the only live entry was quarantined away
        assert list(tmp_path.glob("*")) == []
