"""Tests for the content-addressed automaton cache."""

import pytest

from repro.automaton import build_lalr
from repro.grammar import load_grammar
from repro.perf import metrics
from repro.perf.cache import (
    AutomatonCache,
    build_lalr_cached,
    default_cache_dir,
    grammar_fingerprint,
)


@pytest.fixture
def cache(tmp_path):
    return AutomatonCache(tmp_path)


class TestFingerprint:
    def test_stable_across_equivalent_loads(self, figure1):
        from repro.grammar.emit import dump_grammar

        reloaded = load_grammar(dump_grammar(figure1), name="renamed")
        assert grammar_fingerprint(reloaded) == grammar_fingerprint(figure1)

    def test_name_does_not_affect_the_key(self, figure1):
        # Same productions under a different diagnostic name: same key.
        from repro.grammar.emit import dump_grammar

        other = load_grammar(dump_grammar(figure1), name="something-else")
        assert grammar_fingerprint(other) == grammar_fingerprint(figure1)

    def test_grammar_edit_changes_the_key(self):
        base = load_grammar("e : e '+' e | ID ;")
        edited = load_grammar("e : e '+' e | e '*' e | ID ;")
        assert grammar_fingerprint(base) != grammar_fingerprint(edited)

    def test_precedence_changes_the_key(self):
        base = load_grammar("e : e '+' e | ID ;")
        prec = load_grammar("%left '+'\ne : e '+' e | ID ;")
        assert grammar_fingerprint(base) != grammar_fingerprint(prec)


class TestCache:
    def test_miss_then_hit(self, cache, figure1):
        first = build_lalr_cached(figure1, cache)
        assert cache.info() == {
            "entries": 1,
            "hits": 0,
            "misses": 1,
            "quarantined": 0,
            "write_failures": 0,
        }
        second = build_lalr_cached(figure1, cache)
        assert cache.hits == 1
        assert len(second.states) == len(first.states)
        assert second.grammar is figure1  # caller's instance swapped in

    def test_cached_automaton_is_equivalent(self, cache, figure1):
        built = build_lalr_cached(figure1, cache)
        loaded = build_lalr_cached(figure1, cache)
        assert loaded.lookaheads == built.lookaheads
        assert [str(c) for c in loaded.conflicts] == [
            str(c) for c in built.conflicts
        ]
        assert loaded.tables.action == built.tables.action
        assert loaded.tables.goto == built.tables.goto

    def test_grammar_edit_forces_rebuild(self, cache):
        base = load_grammar("e : e '+' e | ID ;")
        edited = load_grammar("e : e '+' e | e '*' e | ID ;")
        build_lalr_cached(base, cache)
        build_lalr_cached(edited, cache)
        assert cache.misses == 2
        assert cache.info()["entries"] == 2

    def test_corrupt_entry_is_a_miss_and_gets_rebuilt(self, cache, figure1):
        build_lalr_cached(figure1, cache)
        entry = next(cache.directory.glob("*.json"))
        entry.write_text("{definitely not an automaton")
        rebuilt = build_lalr_cached(figure1, cache)
        assert cache.misses == 2
        assert len(rebuilt.states) > 0
        # ...and the overwrite repaired the entry.
        assert cache.get(figure1) is not None

    def test_truncated_entry_is_a_miss(self, cache, figure1):
        build_lalr_cached(figure1, cache)
        entry = next(cache.directory.glob("*.json"))
        entry.write_text(entry.read_text()[:50])
        assert cache.get(figure1) is None

    def test_clear_removes_entries(self, cache, figure1):
        build_lalr_cached(figure1, cache)
        assert cache.clear() == 1
        assert cache.info()["entries"] == 0

    def test_none_cache_is_a_passthrough(self, figure1):
        automaton = build_lalr_cached(figure1, None)
        assert len(automaton.states) == len(build_lalr(figure1).states)

    def test_metrics_counters(self, cache, figure1):
        with metrics.collecting() as collector:
            build_lalr_cached(figure1, cache)
            build_lalr_cached(figure1, cache)
        assert collector.counters["cache.miss"] == 1
        assert collector.counters["cache.hit"] == 1

    def test_cached_automaton_explains_identically(self, cache, figure1):
        from repro.core import CounterexampleFinder
        from repro.core.report import safe_format_report

        build_lalr_cached(figure1, cache)  # populate
        loaded = build_lalr_cached(figure1, cache)
        fresh = CounterexampleFinder(build_lalr(figure1)).explain_all()
        cached = CounterexampleFinder(loaded).explain_all()
        assert [safe_format_report(r) for r in fresh.reports] == [
            safe_format_report(r) for r in cached.reports
        ]


class TestDefaultDirectory:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_fallback_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "automatons"


class TestAlgorithmAwareCache:
    """The construction algorithm is part of the cache identity."""

    def test_fingerprint_differs_per_algorithm(self, figure1):
        keys = {
            grammar_fingerprint(figure1, algorithm)
            for algorithm in ("lalr", "ielr", "lr1")
        }
        assert len(keys) == 3

    def test_ielr_round_trip(self, cache):
        from repro.automaton import IELRAutomaton
        from repro.corpus import load
        from repro.perf.cache import build_automaton_cached

        grammar = load("nonlalr01")
        first = build_automaton_cached(grammar, cache, "ielr")
        assert cache.misses == 1
        second = build_automaton_cached(grammar, cache, "ielr")
        assert cache.hits == 1
        assert isinstance(first, IELRAutomaton)
        assert second.algorithm == "ielr"
        assert not second.conflicts
        assert len(second.states) == len(first.states)

    def test_algorithms_do_not_collide(self, cache):
        from repro.corpus import load
        from repro.perf.cache import build_automaton_cached

        grammar = load("nonlalr01")
        build_automaton_cached(grammar, cache, "ielr")
        lalr = build_automaton_cached(grammar, cache, "lalr")
        assert cache.hits == 0 and cache.misses == 2
        assert lalr.algorithm == "lalr"
        assert lalr.conflicts  # the LALR entry kept its conflicts

    def test_algorithm_mismatch_at_key_is_a_miss(self, cache, figure1):
        """A hand-moved entry whose recorded algorithm disagrees with the
        requested one is rejected rather than served."""
        from repro.automaton.serialize import dump_automaton

        automaton = build_lalr(figure1)
        _ = automaton.tables
        path = cache.directory / (
            grammar_fingerprint(figure1, "ielr") + ".json"
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dump_automaton(automaton))
        assert cache.get(figure1, "ielr") is None
        assert cache.misses == 1

    def test_grammar_directive_is_the_default(self, cache):
        from repro.automaton import IELRAutomaton
        from repro.grammar import load_grammar as load_text
        from repro.perf.cache import build_automaton_cached

        grammar = load_text(
            "%algorithm ielr\ns : 'a' s | 'b' ;", name="directive"
        )
        automaton = build_automaton_cached(grammar, cache, None)
        assert isinstance(automaton, IELRAutomaton)
