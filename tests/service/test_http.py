"""End-to-end HTTP tests over real sockets (asyncio, in-process server)."""

from __future__ import annotations

import asyncio
import json

from repro.robust.retry import RetryPolicy
from repro.service.app import AnalysisService, ServiceConfig, make_handler
from repro.service.admission import AdmissionConfig
from repro.service.supervisor import SupervisorConfig

GRAMMAR = """
%grammar http-smoke
%start S
S : T | S T ;
T : X | Y ;
X : 'a' ;
Y : 'a' 'a' 'b' ;
"""


def _config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        workers=1,
        journal_path=str(tmp_path / "journal.jsonl"),
        cache_dir=str(tmp_path / "cache"),
        supervisor=SupervisorConfig(
            heartbeat_interval=0.05,
            hang_timeout=2.0,
            poll_interval=0.01,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0),
        ),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def _request(port, method, path, body=None, raw_body=None):
    """One HTTP round trip; returns (status, parsed_body, headers)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = (
        raw_body
        if raw_body is not None
        else (json.dumps(body).encode() if body is not None else b"")
    )
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, json.loads(body_blob), headers


class _Server:
    """Async context manager: a live service on an ephemeral port."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.service: AnalysisService | None = None
        self.port = 0

    async def __aenter__(self) -> "_Server":
        self.service = AnalysisService(self.config)
        await self.service.start()
        self._server = await asyncio.start_server(
            make_handler(self.service), "127.0.0.1", 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc_info) -> None:
        self._server.close()
        await self._server.wait_closed()
        await self.service.shutdown(drain_timeout=1.0)


class TestAnalyzeRoute:
    def test_submit_wait_completes_with_reports(self, tmp_path):
        async def scenario():
            async with _Server(_config(tmp_path)) as server:
                status, body, _ = await _request(
                    server.port,
                    "POST",
                    "/v1/analyze?wait=60",
                    body={"grammar": GRAMMAR, "name": "smoke"},
                )
                assert status == 200
                assert body["state"] == "completed"
                assert body["result"]["ok"]
                assert body["result"]["conflicts"] == 1
                assert body["result"]["reports"]
                assert "grammar" not in body  # text elided from public view

        asyncio.run(scenario())

    def test_submit_without_wait_is_accepted_then_pollable(self, tmp_path):
        async def scenario():
            async with _Server(_config(tmp_path)) as server:
                status, body, _ = await _request(
                    server.port,
                    "POST",
                    "/v1/analyze",
                    body={"grammar": GRAMMAR, "name": "poll-me"},
                )
                assert status == 202
                assert body["state"] == "queued"
                job_id = body["id"]
                for _ in range(600):
                    status, body, _ = await _request(
                        server.port, "GET", f"/v1/jobs/{job_id}"
                    )
                    assert status == 200
                    if body["state"] not in ("queued", "running"):
                        break
                    await asyncio.sleep(0.05)
                assert body["state"] == "completed"

        asyncio.run(scenario())

    def test_malformed_json_is_400(self, tmp_path):
        async def scenario():
            async with _Server(_config(tmp_path)) as server:
                status, body, _ = await _request(
                    server.port, "POST", "/v1/analyze", raw_body=b"{not json"
                )
                assert status == 400
                assert "malformed" in body["error"]

        asyncio.run(scenario())

    def test_unknown_option_is_400(self, tmp_path):
        async def scenario():
            async with _Server(_config(tmp_path)) as server:
                status, body, _ = await _request(
                    server.port,
                    "POST",
                    "/v1/analyze",
                    body={"grammar": GRAMMAR, "options": {"warp_speed": True}},
                )
                assert status == 400
                assert "warp_speed" in body["error"]

        asyncio.run(scenario())

    def test_full_queue_is_503_with_retry_after(self, tmp_path):
        async def scenario():
            config = _config(
                tmp_path, admission=AdmissionConfig(max_queue=0)
            )
            async with _Server(config) as server:
                status, body, headers = await _request(
                    server.port,
                    "POST",
                    "/v1/analyze",
                    body={"grammar": GRAMMAR},
                )
                assert status == 503
                assert "retry-after" in headers
                assert int(headers["retry-after"]) >= 1
                assert "queue full" in body["error"]

        asyncio.run(scenario())

    def test_oversize_grammar_is_413(self, tmp_path):
        async def scenario():
            config = _config(
                tmp_path, admission=AdmissionConfig(max_grammar_bytes=16)
            )
            async with _Server(config) as server:
                status, body, _ = await _request(
                    server.port, "POST", "/v1/analyze", body={"grammar": GRAMMAR}
                )
                assert status == 413

        asyncio.run(scenario())


class TestJobsRoute:
    def test_unknown_job_is_404(self, tmp_path):
        async def scenario():
            async with _Server(_config(tmp_path)) as server:
                status, body, _ = await _request(
                    server.port, "GET", "/v1/jobs/deadbeef"
                )
                assert status == 404

        asyncio.run(scenario())

    def test_wrong_method_is_405(self, tmp_path):
        async def scenario():
            async with _Server(_config(tmp_path)) as server:
                status, _, _ = await _request(server.port, "GET", "/v1/analyze")
                assert status == 405
                status, _, _ = await _request(
                    server.port, "POST", "/v1/jobs/abc", body={}
                )
                assert status == 405

        asyncio.run(scenario())

    def test_unknown_route_is_404(self, tmp_path):
        async def scenario():
            async with _Server(_config(tmp_path)) as server:
                status, _, _ = await _request(server.port, "GET", "/v2/nope")
                assert status == 404

        asyncio.run(scenario())


class TestProbes:
    def test_healthz_reports_the_full_picture(self, tmp_path):
        async def scenario():
            async with _Server(_config(tmp_path)) as server:
                await _request(
                    server.port,
                    "POST",
                    "/v1/analyze?wait=60",
                    body={"grammar": GRAMMAR, "name": "observed"},
                )
                status, body, _ = await _request(server.port, "GET", "/healthz")
                assert status == 200
                assert body["status"] == "ok"
                assert body["queue_depth"] == 0
                assert body["jobs"].get("completed") == 1
                assert body["admission"]["admitted"] == 1
                assert "breakers" in body
                assert "retries" in body
                # Phase metrics prove where analysis time went.
                assert any(
                    path == "automaton" or path.startswith("automaton/")
                    for path in body["phases"]
                )

        asyncio.run(scenario())

    def test_readyz_flips_to_503_when_draining(self, tmp_path):
        async def scenario():
            async with _Server(_config(tmp_path)) as server:
                status, body, _ = await _request(server.port, "GET", "/readyz")
                assert status == 200
                assert body["ready"]
                server.service.draining = True
                status, body, _ = await _request(server.port, "GET", "/readyz")
                assert status == 503
                assert not body["ready"]
                server.service.draining = False

        asyncio.run(scenario())


class TestCacheVisibility:
    def test_second_request_shows_no_build_phase(self, tmp_path):
        """Acceptance criterion, end to end over HTTP."""

        async def scenario():
            async with _Server(_config(tmp_path)) as server:
                _, first, _ = await _request(
                    server.port,
                    "POST",
                    "/v1/analyze?wait=60",
                    body={"grammar": GRAMMAR, "name": "warmup"},
                )
                assert any(
                    p == "automaton" or p.startswith("automaton/")
                    for p in first["result"]["phases"]
                )
                _, second, _ = await _request(
                    server.port,
                    "POST",
                    "/v1/analyze?wait=60",
                    body={"grammar": GRAMMAR, "name": "warmup"},
                )
                assert second["state"] == "completed"
                assert not any(
                    p == "automaton" or p.startswith("automaton/")
                    for p in second["result"]["phases"]
                )
                assert "cache/decode" in second["result"]["phases"]

        asyncio.run(scenario())
