"""The smoke driver must reap live servers when a check aborts.

Regression: ``scripts/service_smoke.py``'s ``fail()`` used to
``sys.exit`` straight over running server subprocesses, stranding
orphans that kept writing journal temp files into a directory the
sweep was tearing down.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
import types
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "service_smoke.py"


def _load_smoke():
    spec = importlib.util.spec_from_file_location("_service_smoke", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def _sleeper() -> subprocess.Popen:
    return subprocess.Popen([sys.executable, "-c", "import time; time.sleep(60)"])


class TestFailReapsServers:
    def test_fail_kills_every_live_server_before_exiting(self, capsys):
        smoke = _load_smoke()
        processes = [_sleeper(), _sleeper()]
        smoke._LIVE_SERVERS.extend(
            types.SimpleNamespace(process=process) for process in processes
        )
        with pytest.raises(SystemExit) as excinfo:
            smoke.fail("synthetic check failure")
        assert excinfo.value.code == 1
        for process in processes:
            assert process.wait(timeout=10) is not None
        assert "synthetic check failure" in capsys.readouterr().err

    def test_fail_tolerates_already_dead_servers(self, capsys):
        smoke = _load_smoke()
        process = _sleeper()
        process.kill()
        process.wait(timeout=10)
        smoke._LIVE_SERVERS.append(types.SimpleNamespace(process=process))
        with pytest.raises(SystemExit):
            smoke.fail("after the server already exited")
