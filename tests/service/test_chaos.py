"""Chaos suite: injected crashes, hangs, poison grammars, torn journals.

The contract under test: **every submitted job reaches a terminal
state** — completed, degraded, or failed — never lost, never hung; and a
journal replayed after a crash resumes exactly the unfinished work.

Fault plans are installed in the parent registry; the service forwards
them (with attempt-seeded arrival offsets) into each worker subprocess.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.robust.faults import FaultKind, FaultSpec, inject_faults
from repro.robust.retry import RetryPolicy
from repro.service.app import AnalysisService, ServiceConfig
from repro.service.journal import JobJournal
from repro.service.protocol import (
    AnalyzeOptions,
    AnalyzeRequest,
    JobRecord,
    JobState,
)
from repro.service.supervisor import SupervisorConfig

HEALTHY = """
%grammar healthy
%start S
S : T | S T ;
T : X | Y ;
X : 'a' ;
Y : 'a' 'a' 'b' ;
"""

#: Same shape, different content — a distinct grammar_key/fingerprint.
POISON = HEALTHY.replace("%grammar healthy", "%grammar poison").replace(
    "'b'", "'c'"
)


def _config(tmp_path, **overrides) -> ServiceConfig:
    supervisor = SupervisorConfig(
        heartbeat_interval=0.05,
        hang_timeout=0.6,
        poll_interval=0.01,
        retry=RetryPolicy(max_attempts=overrides.pop("retry_attempts", 3),
                          base_delay=0.01, multiplier=2.0, jitter=0.0),
    )
    defaults = dict(
        workers=2,
        journal_path=str(tmp_path / "journal.jsonl"),
        cache_dir=str(tmp_path / "cache"),
        breaker_threshold=2,
        breaker_cooldown=60.0,
        supervisor=supervisor,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def _submit_and_wait(service, grammar, name, timeout=60.0, **options):
    request = AnalyzeRequest(
        grammar=grammar, name=name, options=AnalyzeOptions(**options)
    )
    decision, job, _ = service.submit(request)
    assert job is not None, f"not admitted: {decision}"
    final = await service.wait_for(job.id, timeout)
    assert final is not None
    return final


class TestCrashRecovery:
    def test_transient_crash_is_retried_to_completion(self, tmp_path):
        async def scenario():
            service = AnalysisService(_config(tmp_path))
            await service.start()
            try:
                with inject_faults(
                    FaultSpec(point="worker", kind=FaultKind.CRASH, count=1)
                ):
                    final = await _submit_and_wait(service, HEALTHY, "flaky")
                assert final.state is JobState.COMPLETED
                assert final.attempts == 2  # crashed once, then succeeded
                assert service.supervisor.counters.get("failure.crash") == 1
                assert service.supervisor.counters.get("retries.scheduled") == 1
            finally:
                await service.shutdown(drain_timeout=1.0)

        asyncio.run(scenario())

    def test_persistent_crash_degrades_and_trips_the_breaker(self, tmp_path):
        async def scenario():
            service = AnalysisService(_config(tmp_path, retry_attempts=2))
            await service.start()
            try:
                with inject_faults(
                    FaultSpec(
                        point="worker",
                        kind=FaultKind.CRASH,
                        count=1_000_000,
                        match="poison",
                    )
                ):
                    # The poison grammar exhausts its retries...
                    poisoned = await _submit_and_wait(service, POISON, "poison")
                    assert poisoned.state is JobState.DEGRADED
                    degradation = poisoned.result["degradation"]
                    assert degradation["error_type"] == "RetriesExhausted"
                    # ...which trips its breaker (threshold 2), so the next
                    # submission is refused without burning a worker.
                    rejected = await _submit_and_wait(service, POISON, "poison")
                    assert rejected.state is JobState.DEGRADED
                    assert (
                        rejected.result["degradation"]["error_type"]
                        == "CircuitBreakerOpen"
                    )
                    assert rejected.attempts == 0
                    # Healthy traffic is entirely unaffected.
                    healthy = await _submit_and_wait(service, HEALTHY, "healthy")
                    assert healthy.state is JobState.COMPLETED
                states = service.breakers.states()
                assert any(s["state"] == "open" for s in states.values())
            finally:
                await service.shutdown(drain_timeout=1.0)

        asyncio.run(scenario())

    def test_hung_worker_is_reaped_and_retried(self, tmp_path):
        async def scenario():
            service = AnalysisService(_config(tmp_path))
            await service.start()
            try:
                with inject_faults(
                    FaultSpec(point="worker", kind=FaultKind.HANG, count=1)
                ):
                    started = time.monotonic()
                    final = await _submit_and_wait(service, HEALTHY, "wedged")
                    elapsed = time.monotonic() - started
                assert final.state is JobState.COMPLETED
                assert final.attempts == 2
                assert service.supervisor.counters.get("failure.hang") == 1
                # Reaped by the heartbeat monitor, not the hard cap.
                assert elapsed < 30.0
            finally:
                await service.shutdown(drain_timeout=1.0)

        asyncio.run(scenario())


class TestTerminality:
    def test_every_job_reaches_a_terminal_state(self, tmp_path):
        """The chaos sweep: mixed healthy/crashing/broken submissions."""

        async def scenario():
            service = AnalysisService(_config(tmp_path, retry_attempts=2))
            await service.start()
            try:
                with inject_faults(
                    FaultSpec(
                        point="worker",
                        kind=FaultKind.CRASH,
                        count=1_000_000,
                        match="poison",
                    )
                ):
                    jobs = []
                    for index in range(3):
                        _, job, _ = service.submit(
                            AnalyzeRequest(
                                grammar=HEALTHY + f"// v{index}\n",
                                name=f"healthy-{index}",
                            )
                        )
                        jobs.append(job)
                    _, poison_job, _ = service.submit(
                        AnalyzeRequest(grammar=POISON, name="poison")
                    )
                    jobs.append(poison_job)
                    _, broken, _ = service.submit(
                        AnalyzeRequest(grammar="%start S\nS ;", name="broken")
                    )
                    jobs.append(broken)
                    finals = [
                        await service.wait_for(job.id, 120.0) for job in jobs
                    ]
                assert all(f is not None and f.state.terminal for f in finals)
                by_name = {f.request.name: f for f in finals}
                assert by_name["poison"].state is JobState.DEGRADED
                assert by_name["broken"].state is JobState.FAILED
                for index in range(3):
                    assert (
                        by_name[f"healthy-{index}"].state is JobState.COMPLETED
                    )
            finally:
                await service.shutdown(drain_timeout=2.0)

        asyncio.run(scenario())

    def test_permanent_failure_never_burns_retries_or_breakers(self, tmp_path):
        async def scenario():
            service = AnalysisService(_config(tmp_path))
            await service.start()
            try:
                final = await _submit_and_wait(
                    service, "%start S\nS : ;;;", "syntactically-broken"
                )
                assert final.state is JobState.FAILED
                assert final.attempts == 1
                assert final.error
                assert service.breakers.open_count == 0
            finally:
                await service.shutdown(drain_timeout=1.0)

        asyncio.run(scenario())


class TestResume:
    def test_journal_resume_after_simulated_kill(self, tmp_path):
        """A journal abandoned mid-job (as by ``kill -9``) resumes cleanly."""
        journal_path = tmp_path / "journal.jsonl"
        journal = JobJournal(journal_path)
        # The dead service journaled: one completed, one running, one
        # queued — then the final line was torn mid-write.
        done = AnalyzeRequest(grammar=HEALTHY, name="was-done")
        done_job = JobRecord.new(done, now=10.0)
        journal.append(done_job)
        journal.append(
            done_job.advance(JobState.COMPLETED, 11.0, result={"ok": True})
        )
        running = AnalyzeRequest(grammar=POISON, name="was-running")
        running_job = JobRecord.new(running, now=12.0)
        journal.append(running_job)
        journal.append(running_job.advance(JobState.RUNNING, 13.0, attempts=1))
        with inject_faults(
            FaultSpec(point="journal", kind=FaultKind.TORN_WRITE)
        ):
            journal.append(running_job.advance(JobState.RUNNING, 14.0))

        async def scenario():
            service = AnalysisService(_config(tmp_path))
            await service.start()
            try:
                assert service.resumed == 1
                assert service.replay_stats.torn == 1
                # The completed job is NOT re-run (no duplicate side
                # effects) but stays queryable.
                assert service.jobs[done_job.id].state is JobState.COMPLETED
                final = await service.wait_for(running_job.id, 60.0)
                assert final is not None
                assert final.state is JobState.COMPLETED
                # The interrupted attempt still counts toward the total.
                assert final.attempts >= 2
            finally:
                await service.shutdown(drain_timeout=1.0)

        asyncio.run(scenario())

    def test_drain_checkpoints_unfinished_work_for_the_next_boot(self, tmp_path):
        config = _config(tmp_path)

        async def first_boot():
            service = AnalysisService(config)
            await service.start()
            # A job slow enough (synthetic pre-analysis sleep) that the
            # impatient drain below cannot finish it.
            _, job, _ = service.submit(
                AnalyzeRequest(
                    grammar=HEALTHY,
                    name="slow",
                    options=AnalyzeOptions(chaos_sleep_s=20.0),
                )
            )
            await asyncio.sleep(0.2)  # let it reach RUNNING
            summary = await service.shutdown(drain_timeout=0.2)
            assert summary["drained"] == 0
            assert summary["checkpointed"] == 1
            return job.id

        async def second_boot(job_id):
            service = AnalysisService(_config(tmp_path))
            await service.start()
            try:
                assert service.resumed == 1
                job = service.jobs[job_id]
                # Checkpointed back to queued, not lost or terminal.
                assert job.state is JobState.QUEUED
                # The resumed copy keeps the original clamped options —
                # cancel the wait quickly by just checking it requeued.
                assert job.request.options.chaos_sleep_s > 0.0
            finally:
                await service.shutdown(drain_timeout=0.1)

        job_id = asyncio.run(first_boot())
        asyncio.run(second_boot(job_id))


class TestCacheSharing:
    def test_repeat_submission_rides_the_warm_cache(self, tmp_path):
        """Acceptance: the second run's build phase is absent entirely."""

        async def scenario():
            service = AnalysisService(_config(tmp_path, workers=1))
            await service.start()
            try:
                first = await _submit_and_wait(service, HEALTHY, "g1")
                assert first.state is JobState.COMPLETED
                phases1 = first.result["phases"]
                assert any(
                    path == "automaton" or path.startswith("automaton/")
                    for path in phases1
                )
                second = await _submit_and_wait(service, HEALTHY, "g1")
                assert second.state is JobState.COMPLETED
                assert second.id != first.id
                phases2 = second.result["phases"]
                assert not any(
                    path == "automaton" or path.startswith("automaton/")
                    for path in phases2
                )
                assert "cache/decode" in phases2
            finally:
                await service.shutdown(drain_timeout=1.0)

        asyncio.run(scenario())

    def test_live_duplicate_submissions_coalesce(self, tmp_path):
        async def scenario():
            service = AnalysisService(_config(tmp_path, workers=1))
            await service.start()
            try:
                options = AnalyzeOptions(chaos_sleep_s=1.0)
                request = AnalyzeRequest(
                    grammar=HEALTHY, name="dup", options=options
                )
                _, job1, co1 = service.submit(request)
                _, job2, co2 = service.submit(request)
                assert not co1
                assert co2
                assert job1.id == job2.id
                assert service.coalesced == 1
                final = await service.wait_for(job1.id, 60.0)
                assert final.state is JobState.COMPLETED
            finally:
                await service.shutdown(drain_timeout=1.0)

        asyncio.run(scenario())


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-v"]))
