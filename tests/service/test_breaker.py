"""Circuit-breaker state machine under a fake clock."""

from __future__ import annotations

from repro.service.breaker import BreakerBoard, BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_closed_until_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()  # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow()  # everyone else waits on the probe

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_a_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # probe failed — one strike re-opens
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.retry_after() == 5.0
        clock.advance(5.0)
        assert breaker.allow()

    def test_retry_after_counts_down(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=30.0, clock=clock)
        assert breaker.retry_after() == 0.0
        breaker.record_failure()
        assert breaker.retry_after() == 30.0
        clock.advance(12.0)
        assert breaker.retry_after() == 18.0


class TestBreakerBoard:
    def test_keys_are_independent(self):
        clock = FakeClock()
        board = BreakerBoard(threshold=1, cooldown=10.0, clock=clock)
        board.get("poison").record_failure()
        assert not board.get("poison").allow()
        assert board.get("healthy").allow()
        assert board.open_count == 1

    def test_states_snapshot_elides_untouched_breakers(self):
        clock = FakeClock()
        board = BreakerBoard(threshold=2, cooldown=10.0, clock=clock)
        board.get("quiet")
        board.get("noisy").record_failure()
        board.get("noisy").record_failure()
        states = board.states()
        assert set(states) == {"noisy"}
        assert states["noisy"]["state"] == "open"
        assert states["noisy"]["consecutive_failures"] == 2
        assert states["noisy"]["retry_after_s"] == 10.0
