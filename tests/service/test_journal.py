"""Journal crash-safety: torn writes, replay, rotation, resume."""

from __future__ import annotations

import json

from repro.robust.faults import FaultKind, FaultSpec, inject_faults
from repro.service.journal import JobJournal, resumable
from repro.service.protocol import AnalyzeRequest, JobRecord, JobState


def _job(name: str = "g", grammar: str = "%start S\nS : 'a' ;") -> JobRecord:
    return JobRecord.new(AnalyzeRequest(grammar=grammar, name=name), now=100.0)


class TestAppendReplay:
    def test_roundtrip_latest_snapshot_wins(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        job = _job()
        journal.append(job)
        running = job.advance(JobState.RUNNING, 101.0)
        journal.append(running)
        done = running.advance(JobState.COMPLETED, 102.0, result={"ok": True})
        journal.append(done)

        records, stats = journal.replay()
        assert stats.lines == 3
        assert stats.applied == 3
        assert stats.torn == 0
        assert records[job.id].state is JobState.COMPLETED
        assert records[job.id].result == {"ok": True}

    def test_replay_of_missing_file_is_empty(self, tmp_path):
        records, stats = JobJournal(tmp_path / "absent.jsonl").replay()
        assert records == {}
        assert stats.lines == 0

    def test_replay_is_idempotent(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        job = _job()
        journal.append(job)
        journal.append(job.advance(JobState.COMPLETED, 101.0))
        first, _ = journal.replay()
        second, _ = journal.replay()
        assert {k: v.to_json() for k, v in first.items()} == {
            k: v.to_json() for k, v in second.items()
        }


class TestTornWrites:
    def test_torn_final_line_loses_only_the_last_snapshot(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        job = _job()
        journal.append(job)
        running = job.advance(JobState.RUNNING, 101.0)
        with inject_faults(FaultSpec(point="journal", kind=FaultKind.TORN_WRITE)):
            journal.append(running)
        assert journal.torn_writes == 1
        raw = (tmp_path / "j.jsonl").read_bytes()
        assert not raw.endswith(b"\n")  # genuinely torn on disk

        records, stats = journal.replay()
        assert stats.torn == 1
        # The job fell back to its previous intact snapshot.
        assert records[job.id].state is JobState.QUEUED

    def test_reopen_heals_the_torn_tail_before_appending(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        job = _job()
        with inject_faults(FaultSpec(point="journal", kind=FaultKind.TORN_WRITE)):
            journal.append(job)
        # A "restarted" writer appends the next snapshot cleanly.
        reopened = JobJournal(tmp_path / "j.jsonl")
        reopened.append(job.advance(JobState.COMPLETED, 101.0))
        records, stats = reopened.replay()
        assert stats.torn == 1
        assert records[job.id].state is JobState.COMPLETED
        # Every line after the torn fragment parses.
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        assert len(lines) == 2
        json.loads(lines[1])

    def test_stale_rotation_temp_is_swept_on_reopen(self, tmp_path):
        # A writer killed mid-rotation leaves j.jsonl.rotate.tmp* behind
        # (the os.replace never happened). Reopening the journal must
        # sweep the orphan instead of letting temp files accumulate.
        journal = JobJournal(tmp_path / "j.jsonl")
        job = _job()
        journal.append(job)
        stale = tmp_path / "j.jsonl.rotate.tmp1234"
        stale.write_text('{"half": "written rot')
        unrelated = tmp_path / "other.jsonl.rotate.tmp1"
        unrelated.write_text("not ours")

        reopened = JobJournal(tmp_path / "j.jsonl")
        assert reopened.stale_temps_removed == 1
        assert not stale.exists()
        assert unrelated.exists()  # only this journal's temps are swept
        records, _ = reopened.replay()
        assert set(records) == {job.id}

    def test_mid_file_garbage_is_skipped_not_fatal(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        a, b = _job("a"), _job("b", grammar="%start S\nS : 'b' ;")
        journal.append(a)
        with open(tmp_path / "j.jsonl", "a") as handle:
            handle.write("}}} not json {{{\n")
        journal.append(b)
        records, stats = journal.replay()
        assert stats.torn == 1
        assert set(records) == {a.id, b.id}


class TestRotation:
    def test_rotation_keeps_live_and_newest_terminal(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", keep_terminal=2)
        live = _job("live")
        journal.append(live)
        terminals = []
        for index in range(5):
            job = _job(f"t{index}")
            done = job.advance(JobState.COMPLETED, 200.0 + index)
            journal.append(done)
            terminals.append(done)
        journal.rotate({**{live.id: live}, **{t.id: t for t in terminals}}.values())

        records, _ = journal.replay()
        assert live.id in records
        kept_terminal = [r for r in records.values() if r.state.terminal]
        assert len(kept_terminal) == 2
        assert {r.updated_at for r in kept_terminal} == {203.0, 204.0}
        assert journal.appends_since_rotate == 0

    def test_maybe_rotate_fires_on_threshold(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", rotate_after=3)
        job = _job()
        journal.append(job)
        assert not journal.maybe_rotate({job.id: job}.values())
        journal.append(job)
        journal.append(job)
        assert journal.maybe_rotate({job.id: job}.values())
        records, stats = journal.replay()
        assert stats.lines == 1  # compacted to one snapshot
        assert records[job.id].id == job.id


class TestResume:
    def test_resumable_is_live_jobs_oldest_first(self):
        queued = _job("q")
        running = _job("r").advance(JobState.RUNNING, 50.0)
        running = type(running)(**{**running.__dict__, "created_at": 10.0})
        done = _job("d").advance(JobState.COMPLETED, 60.0)
        records = {j.id: j for j in (queued, running, done)}
        resume = resumable(records)
        assert [j.id for j in resume] == [running.id, queued.id]

    def test_terminal_jobs_never_resume(self):
        records = {
            job.id: job.advance(state, 60.0)
            for job, state in (
                (_job("c"), JobState.COMPLETED),
                (_job("f"), JobState.FAILED),
                (_job("g"), JobState.DEGRADED),
                (_job("x"), JobState.CANCELLED),
            )
        }
        assert resumable(records) == []
