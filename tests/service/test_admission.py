"""Admission control: clamping, shedding, envelopes, fault injection."""

from __future__ import annotations

from repro.robust.budget import CancellationToken
from repro.robust.faults import FaultKind, FaultSpec, inject_faults
from repro.service.admission import (
    Admitted,
    AdmissionConfig,
    AdmissionController,
    Rejected,
    Shed,
)
from repro.service.protocol import AnalyzeOptions, AnalyzeRequest


def _request(**options) -> AnalyzeRequest:
    return AnalyzeRequest(
        grammar="%start S\nS : 'a' ;",
        name="g",
        options=AnalyzeOptions(**options),
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestDecisions:
    def test_admits_and_clamps(self):
        controller = AdmissionController(
            AdmissionConfig(max_time_limit=5.0, max_cumulative_limit=20.0)
        )
        decision = controller.decide(
            _request(time_limit=99.0, cumulative_limit=999.0), queue_depth=0
        )
        assert isinstance(decision, Admitted)
        assert decision.options.time_limit == 5.0
        assert decision.options.cumulative_limit == 20.0
        assert controller.counters()["admitted"] == 1

    def test_clamp_floors_negative_budgets(self):
        controller = AdmissionController()
        clamped = controller.clamp(
            AnalyzeOptions(time_limit=-1.0, max_configurations=0, chaos_sleep_s=-5.0)
        )
        assert clamped.time_limit == 0.0
        assert clamped.max_configurations == 1
        assert clamped.chaos_sleep_s == 0.0

    def test_oversize_grammar_is_rejected_not_shed(self):
        controller = AdmissionController(AdmissionConfig(max_grammar_bytes=8))
        decision = controller.decide(_request(), queue_depth=0)
        assert isinstance(decision, Rejected)
        assert decision.status == 413
        assert controller.counters()["rejected"] == 1

    def test_full_queue_sheds_with_retry_after(self):
        controller = AdmissionController(AdmissionConfig(max_queue=2))
        decision = controller.decide(_request(), queue_depth=2)
        assert isinstance(decision, Shed)
        assert decision.retry_after >= 1
        assert controller.counters()["shed"] == 1

    def test_retry_after_tracks_observed_latency(self):
        controller = AdmissionController(
            AdmissionConfig(max_queue=1, max_retry_after=1000.0)
        )
        for _ in range(32):
            controller.observe_job_seconds(10.0)
        slow = controller.decide(_request(), queue_depth=1)
        assert isinstance(slow, Shed)
        # depth+1 jobs ahead at ~10s each.
        assert slow.retry_after >= 15

    def test_queue_fault_point_forces_shedding(self):
        controller = AdmissionController(AdmissionConfig(max_queue=100))
        with inject_faults(
            FaultSpec(point="queue", kind=FaultKind.EXCEPTION, count=1)
        ):
            shed = controller.decide(_request(), queue_depth=0)
            assert isinstance(shed, Shed)
            # The fault was one-shot; the next request is admitted.
            assert isinstance(controller.decide(_request(), queue_depth=0), Admitted)

    def test_queue_fault_match_filter_targets_one_grammar(self):
        controller = AdmissionController()
        with inject_faults(
            FaultSpec(point="queue", kind=FaultKind.EXCEPTION, match="poison")
        ):
            poisoned = AnalyzeRequest(grammar="%start S\nS : 'a' ;", name="poison-1")
            healthy = AnalyzeRequest(grammar="%start S\nS : 'a' ;", name="healthy")
            assert isinstance(controller.decide(healthy, 0), Admitted)
            assert isinstance(controller.decide(poisoned, 0), Shed)


class TestEnvelopes:
    def test_global_time_budget_exhaustion_sheds(self):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionConfig(global_time_budget=100.0), clock=clock
        )
        assert isinstance(controller.decide(_request(), 0), Admitted)
        clock.now = 101.0
        decision = controller.decide(_request(), 0)
        assert isinstance(decision, Shed)
        assert "envelope" in decision.reason

    def test_cancellation_sheds_everything(self):
        token = CancellationToken()
        controller = AdmissionController(token=token)
        assert isinstance(controller.decide(_request(), 0), Admitted)
        token.cancel("shutting down")
        decision = controller.decide(_request(), 0)
        assert isinstance(decision, Shed)
        assert "shutting down" in decision.reason
