"""Golden tests for the non-LALR fixture family and its provenance."""

import pytest

from repro.automaton import (
    ProvenanceVerdict,
    annotate_provenance,
    build_ielr,
    build_lalr,
)
from repro.automaton.conflicts import ConflictKind
from repro.core import CounterexampleFinder, safe_format_report
from repro.core.report import report_to_json
from repro.corpus import all_specs, load
from repro.verify.differential import DifferentialOracle

NONLALR_FAMILY = ("nonlalr01", "nonlalr02", "nonlalr03-genuine")


class TestRegistry:
    def test_family_registered(self):
        names = {spec.name for spec in all_specs(category="nonlalr")}
        assert names == set(NONLALR_FAMILY)

    @pytest.mark.parametrize("name", NONLALR_FAMILY)
    def test_loadable(self, name):
        grammar = load(name)
        assert grammar.name == name


class TestMergeArtifacts:
    @pytest.mark.parametrize("name", ("nonlalr01", "nonlalr02"))
    def test_lalr_conflicted_ielr_clean(self, name):
        """Every non-LALR fixture: LALR reports R/R conflicts where
        canonical LR(1) — and therefore IELR — has none."""
        grammar = load(name)
        lalr = build_lalr(grammar)
        assert lalr.conflicts
        assert all(
            conflict.kind is ConflictKind.REDUCE_REDUCE
            for conflict in lalr.conflicts
        )
        assert not build_ielr(grammar).conflicts

    @pytest.mark.parametrize("name", ("nonlalr01", "nonlalr02"))
    def test_report_labels_merge_artifact(self, name):
        grammar = load(name)
        automaton = build_lalr(grammar)
        summary = CounterexampleFinder(automaton, time_limit=2.0).explain_all()
        mapping = annotate_provenance(summary.reports, automaton)
        assert mapping
        split_ids = {
            sid
            for split in build_ielr(grammar).splits
            for sid in split.state_ids
        }
        for report in summary.reports:
            text = safe_format_report(report)
            assert "Provenance: LALR merge artifact" in text
            assert "splits into minimal-LR(1) states" in text
            assert report.provenance.split_states
            assert f"#{report.provenance.split_states[0]}" in text
            assert set(report.provenance.split_states) <= split_ids

    def test_robust_report_json_carries_provenance(self):
        grammar = load("nonlalr01")
        automaton = build_lalr(grammar)
        summary = CounterexampleFinder(automaton, time_limit=2.0).explain_all()
        annotate_provenance(summary.reports, automaton)
        entry = report_to_json(summary.reports[0])
        assert entry["provenance"]["verdict"] == "LALR merge artifact"
        assert len(entry["provenance"]["split_states"]) >= 2


class TestGenuineSibling:
    def test_conflict_survives_everywhere(self):
        grammar = load("nonlalr03-genuine")
        assert build_lalr(grammar).conflicts
        assert build_ielr(grammar).conflicts
        assert build_ielr(grammar, algorithm="lr1").conflicts

    def test_report_labels_genuine(self):
        grammar = load("nonlalr03-genuine")
        automaton = build_lalr(grammar)
        summary = CounterexampleFinder(automaton, time_limit=2.0).explain_all()
        mapping = annotate_provenance(summary.reports, automaton)
        (provenance,) = mapping.values()
        assert provenance.verdict is ProvenanceVerdict.GENUINE
        text = safe_format_report(summary.reports[0])
        assert "Provenance: genuine LR(1) conflict" in text


class TestOracle:
    @pytest.mark.parametrize("name", NONLALR_FAMILY)
    def test_differential_oracle_consistent(self, name):
        grammar = load(name)
        report = DifferentialOracle(grammar, seed=1).check()
        assert report.ok, report.describe()


class TestDefaultOutputUnchanged:
    @pytest.mark.parametrize("name", NONLALR_FAMILY)
    def test_no_provenance_line_without_annotation(self, name):
        """Provenance is strictly opt-in: un-annotated reports render
        byte-identically to the pre-IELR format."""
        automaton = build_lalr(load(name))
        summary = CounterexampleFinder(automaton, time_limit=2.0).explain_all()
        for report in summary.reports:
            assert "Provenance" not in safe_format_report(report)
            assert "provenance" not in report_to_json(report)
