"""Tests for the corpus registry and the small corpus grammars."""

import pytest

from repro.automaton import build_lalr
from repro.corpus import all_specs, get, load


class TestRegistry:
    def test_all_table1_names_present(self):
        names = {spec.name for spec in all_specs()}
        expected = {
            "figure1", "figure3", "figure7",
            "abcd", "simp2", "xi", "eqn", "ambfailed01",
            "java-ext1", "java-ext2",
            "stackexc01", "stackexc02",
        }
        expected |= {f"stackovf{i:02d}" for i in range(1, 11)}
        expected |= {f"{lang}.{i}" for lang in ("SQL", "Pascal", "C", "Java")
                     for i in range(1, 6)}
        assert expected <= names

    def test_categories(self):
        assert len(all_specs("paper")) == 3
        assert len(all_specs("ours")) == 7
        assert len(all_specs("stackoverflow")) == 12
        assert len(all_specs("bv10")) == 20
        assert len(all_specs("hygiene")) == 1

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="no corpus grammar"):
            get("nope")

    def test_load_sets_registry_name(self):
        grammar = load("figure1")
        assert grammar.name == "figure1"

    def test_paper_rows_attached(self):
        # Hygiene-control and non-LALR fixture grammars are not Table 1
        # entries and carry no row.
        for spec in all_specs():
            if spec.category in ("hygiene", "nonlalr"):
                assert spec.paper is None, spec.name
            else:
                assert spec.paper is not None, spec.name


class TestSmallGrammarShapes:
    """Each small grammar's conflict profile matches its Table 1 row in kind."""

    @pytest.mark.parametrize(
        "name",
        ["figure1", "figure3", "figure7", "abcd", "simp2", "xi", "eqn",
         "ambfailed01", "stackexc01", "stackexc02"]
        + [f"stackovf{i:02d}" for i in range(1, 11)],
    )
    def test_has_conflicts(self, name):
        spec = get(name)
        automaton = build_lalr(spec.load())
        assert automaton.conflicts, f"{name} should have conflicts"

    @pytest.mark.parametrize(
        "name,count",
        [("figure1", 3), ("figure3", 1), ("figure7", 2), ("abcd", 3),
         ("simp2", 1), ("xi", 6), ("eqn", 1), ("ambfailed01", 1),
         ("stackexc01", 3), ("stackovf02", 4), ("stackovf08", 8)],
    )
    def test_conflict_counts(self, name, count):
        automaton = build_lalr(get(name).load())
        assert len(automaton.conflicts) == count

    @pytest.mark.parametrize("name", ["figure1", "figure3", "figure7"])
    def test_exact_grammars_match_table1_structure(self, name):
        spec = get(name)
        assert spec.exact
        grammar = spec.load()
        automaton = build_lalr(grammar)
        row = spec.paper
        assert len(automaton.states) == row.states
        assert len(automaton.conflicts) == row.conflicts


class TestBV10Bases:
    """The language base grammars must be conflict-free."""

    def test_sql_base_clean(self):
        from repro.corpus.sql import sql_base

        assert not build_lalr(sql_base()).conflicts

    def test_pascal_base_clean(self):
        from repro.corpus.pascal import pascal_base

        assert not build_lalr(pascal_base()).conflicts

    def test_c_base_clean(self):
        from repro.corpus.c import c_base

        assert not build_lalr(c_base()).conflicts

    def test_java_base_clean(self):
        from repro.corpus.java import java_base

        assert not build_lalr(java_base()).conflicts

    @pytest.mark.parametrize(
        "name",
        [f"{lang}.{i}" for lang in ("SQL", "Pascal", "C") for i in range(1, 6)]
        + ["Java.1", "Java.3", "Java.5"],
    )
    def test_variants_have_conflicts(self, name):
        automaton = build_lalr(get(name).load())
        assert automaton.conflicts, f"{name} must have injected conflicts"

    def test_java2_conflict_explosion(self):
        # The nullable-modifier defect must produce a large conflict count
        # (the paper's Java.2 has 1133).
        automaton = build_lalr(get("Java.2").load())
        assert len(automaton.conflicts) > 100
