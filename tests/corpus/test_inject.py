"""Tests for the conflict-injection helpers."""

import pytest

from repro.corpus.inject import add_rules, drop_directive, load_variant, replace_rule

BASE = """
%start s
%left '+'
s : e ;
e : e '+' e | ID ;
"""


class TestAddRules:
    def test_appends(self):
        text = add_rules(BASE, "e : e '*' e ;")
        assert text.rstrip().endswith("e : e '*' e ;")

    def test_result_loads(self):
        grammar = load_variant(add_rules(BASE, "e : NUM ;"), "variant")
        assert grammar.name == "variant"
        assert grammar.num_user_productions == 4


class TestDropDirective:
    def test_removes_line(self):
        text = drop_directive(BASE, "%left '+'")
        assert "%left" not in text

    def test_revives_conflict(self):
        from repro.automaton import build_lalr

        clean = load_variant(BASE, "clean")
        assert not build_lalr(clean).conflicts
        broken = load_variant(drop_directive(BASE, "%left '+'"), "broken")
        assert build_lalr(broken).conflicts

    def test_missing_directive_raises(self):
        with pytest.raises(ValueError, match="not found"):
            drop_directive(BASE, "%right '^'")


class TestReplaceRule:
    def test_replaces(self):
        text = replace_rule(BASE, "e : e '+' e | ID ;", "e : ID ;")
        assert "'+'" not in text.split("%left")[1].split("\n", 1)[1]

    def test_missing_fragment_raises(self):
        with pytest.raises(ValueError, match="not found"):
            replace_rule(BASE, "nope", "x")
