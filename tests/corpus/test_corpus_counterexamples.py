"""Corpus-wide integration: explain and verify every small grammar's conflicts.

For every small/medium corpus grammar the finder must answer every
conflict, all unifying counterexamples must verify ambiguous against the
Earley oracle, and unambiguous grammars must produce no unifying
counterexamples at all. The heavy rows (conflict explosions, T/L
grammars) are exercised by the benchmark harness instead.
"""

import pytest

from repro.automaton import build_lalr
from repro.core import CounterexampleFinder
from repro.corpus import get

FAST_GRAMMARS = [
    "figure1", "figure3", "figure7",
    "abcd", "simp2", "xi", "eqn", "ambfailed01",
    "stackexc01", "stackexc02",
    "stackovf01", "stackovf02", "stackovf03", "stackovf04", "stackovf05",
    "stackovf06", "stackovf07", "stackovf08", "stackovf09", "stackovf10",
    "SQL.1", "SQL.2", "SQL.3", "SQL.4", "SQL.5",
    "Pascal.2", "Pascal.3", "Pascal.4", "Pascal.5",
    "C.1", "C.5", "Java.1", "Java.5",
]


@pytest.mark.parametrize("name", FAST_GRAMMARS)
def test_corpus_grammar_explained(name):
    spec = get(name)
    automaton = build_lalr(spec.load())
    finder = CounterexampleFinder(
        automaton, time_limit=2.0, cumulative_limit=30.0, verify=True
    )
    summary = finder.explain_all()

    # Every conflict answered.
    assert summary.num_conflicts == len(automaton.conflicts)
    answered = (
        summary.num_unifying + summary.num_nonunifying + summary.num_timeout
    )
    assert answered == summary.num_conflicts

    # Unambiguous grammars never produce unifying counterexamples.
    if not spec.ambiguous:
        assert summary.num_unifying == 0

    # verify=True means any unifying counterexample passed the Earley check.
    for report in summary.reports:
        if report.counterexample.unifying:
            assert report.verified is True
