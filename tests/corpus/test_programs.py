"""Integration tests: parse real programs with the corpus language grammars.

Each base grammar gets a lexer (:mod:`repro.corpus.lexers`) and a small
but representative program; the LR runtime must accept it and the parse
tree's yield must equal the token stream. This validates the grammars as
*grammars*, not just as conflict-generation substrates.
"""

import pytest

from repro.parsing import LRParser

SQL_PROGRAM = """
SELECT DISTINCT name, SUM(amount) AS total
FROM orders o JOIN customers c ON o.id = c.id
WHERE status = 'open' AND NOT amount IS NULL
GROUP BY name
HAVING COUNT(*) > 1
ORDER BY total DESC ;

INSERT INTO orders (id, amount) VALUES (1, 250) ;

UPDATE orders SET amount = amount + 10 WHERE id = 1 ;

DELETE FROM orders WHERE status = 'cancelled' ;

CREATE TABLE customers (
    id INT PRIMARY KEY,
    name VARCHAR ( 40 ) NOT NULL,
    active BOOLEAN DEFAULT TRUE
) ;

DROP TABLE old_orders ;
"""

SQL_SUBQUERY = """
SELECT name FROM customers
WHERE id IN ( SELECT customer FROM orders WHERE amount > 100 )
  AND EXISTS ( SELECT id FROM payments ) ;
"""

PASCAL_PROGRAM = """
program demo(input, output);
label 99;
const
  max = 10;
  greeting = 'hi';
type
  range = 1 .. 10;
  table = array [ 1 .. 10 ] of integer;
  point = record x : integer; y : integer end;
var
  i, total : integer;
  data : table;

procedure fill(n : integer);
begin
  i := 1;
  while i <= n do
  begin
    data[i] := i * 2;
    i := i + 1
  end
end;

function double(n : integer) : integer;
begin
  double := n * 2
end;

begin
  total := 0;
  fill(max);
  for i := 1 to max do
    total := total + data[i];
  if total > 100 then
    total := 100
  else
    total := total + 1;
  repeat
    total := total - 1
  until total = 0;
  case i of
    1 : total := 1;
    2, 3 : total := 2
  end;
  goto 99;
  99 : total := double(total)
end.
"""

C_PROGRAM = """
struct point { int x; int y; };

static int square(int n) { return n * n; }

int max(int a, int b)
{
    if (a > b)
        return a;
    else
        return b;
}

int main()
{
    int i;
    int total;
    int values[10];
    struct point p;
    total = 0;
    for (i = 0; i < 10; i = i + 1) {
        values[i] = square(i);
        total = total + values[i];
    }
    while (total > 100)
        total = total - 1;
    do {
        total = total + 1;
    } while (total % 2 != 0);
    switch (total) {
    case 0:
        total = 1;
        break;
    default:
        break;
    }
    p.x = total > 0 ? total : -total;
    return max(total, 0);
}
"""

JAVA_PROGRAM = """
package demo.app;

import java.util.List;
import java.io.*;

public class Account extends Object implements Comparable {
    private static int count = 0;
    protected int balance;
    int[] history;

    static { count = 0; }

    public Account(int opening) {
        super();
        balance = opening;
        history = new int[10];
    }

    public int deposit(int amount) throws Exception {
        if (amount < 0) {
            throw new Exception("negative");
        }
        balance = balance + amount;
        return balance;
    }

    public int sum() {
        int total = 0;
        for (int i = 0; i < 10; i = i + 1) {
            total = total + history[i];
        }
        while (total > 1000) {
            total = total - 1;
        }
        do { total = total + 1; } while (total % 2 != 0);
        switch (total) {
        case 0:
            total = 1;
            break;
        default:
            break;
        }
        try {
            total = this.deposit(total);
        } catch (Exception e) {
            total = 0;
        } finally {
            count = count + 1;
        }
        return total > 0 ? total : -total;
    }
}

interface Comparable {
    int compareTo(Object other);
}
"""


class TestSQLPrograms:
    @pytest.fixture(scope="class")
    def parser(self):
        from repro.corpus.sql import sql_base

        return LRParser(sql_base())

    @pytest.fixture(scope="class")
    def lexer(self):
        from repro.corpus.lexers import sql_lexer

        return sql_lexer()

    def test_statement_suite(self, parser, lexer):
        tokens = lexer.tokenize(SQL_PROGRAM)
        tree = parser.parse(tokens)
        assert list(tree.leaf_symbols()) == tokens

    def test_subqueries(self, parser, lexer):
        assert parser.accepts(lexer.tokenize(SQL_SUBQUERY))

    def test_rejects_garbage(self, parser, lexer):
        assert not parser.accepts(lexer.tokenize("SELECT FROM WHERE ;"))


class TestPascalPrograms:
    @pytest.fixture(scope="class")
    def parser(self):
        from repro.corpus.pascal import pascal_base

        return LRParser(pascal_base())

    @pytest.fixture(scope="class")
    def lexer(self):
        from repro.corpus.lexers import pascal_lexer

        return pascal_lexer()

    def test_full_program(self, parser, lexer):
        tokens = lexer.tokenize(PASCAL_PROGRAM)
        tree = parser.parse(tokens)
        assert list(tree.leaf_symbols()) == tokens

    def test_minimal_program(self, parser, lexer):
        assert parser.accepts(lexer.tokenize("program p; begin end."))

    def test_rejects_unbalanced(self, parser, lexer):
        assert not parser.accepts(lexer.tokenize("program p; begin end"))


class TestCPrograms:
    @pytest.fixture(scope="class")
    def parser(self):
        from repro.corpus.c import c_base

        return LRParser(c_base())

    @pytest.fixture(scope="class")
    def lexer(self):
        from repro.corpus.lexers import c_lexer

        return c_lexer()

    def test_full_program(self, parser, lexer):
        tokens = lexer.tokenize(C_PROGRAM)
        tree = parser.parse(tokens)
        assert list(tree.leaf_symbols()) == tokens

    def test_declarations(self, parser, lexer):
        text = "const unsigned long *p[4]; enum color { RED, GREEN = 2 };"
        assert parser.accepts(lexer.tokenize(text))

    def test_expression_zoo(self, parser, lexer):
        text = (
            "int f() { x = a << 2 | b & ~c ^ (d >= e); "
            "y = sizeof(int); z = -*p++; return x && y || !z; }"
        )
        assert parser.accepts(lexer.tokenize(text))

    def test_rejects_bad_syntax(self, parser, lexer):
        assert not parser.accepts(lexer.tokenize("int f( { }"))


class TestJavaPrograms:
    @pytest.fixture(scope="class")
    def parser(self):
        from repro.corpus.java import java_base

        return LRParser(java_base())

    @pytest.fixture(scope="class")
    def lexer(self):
        from repro.corpus.lexers import java_lexer

        return java_lexer()

    def test_full_program(self, parser, lexer):
        tokens = lexer.tokenize(JAVA_PROGRAM)
        tree = parser.parse(tokens)
        assert list(tree.leaf_symbols()) == tokens

    def test_minimal_class(self, parser, lexer):
        assert parser.accepts(lexer.tokenize("class A { }"))

    def test_casts(self, parser, lexer):
        text = "class A { int f() { return (int) x + (byte[]) y; } }"
        assert parser.accepts(lexer.tokenize(text))

    def test_rejects_bad_syntax(self, parser, lexer):
        assert not parser.accepts(lexer.tokenize("class { }"))
