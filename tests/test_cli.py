"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def grammar_file(tmp_path):
    path = tmp_path / "dangling.y"
    path.write_text(
        """
        %start stmt
        stmt : IF expr THEN stmt ELSE stmt
             | IF expr THEN stmt
             | ID ':=' expr ;
        expr : ID ;
        """
    )
    return str(path)


class TestCLI:
    def test_conflicted_grammar_reports(self, grammar_file, capsys):
        exit_code = main([grammar_file])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "Shift/Reduce conflict" in output
        assert "Ambiguity detected" in output
        assert "1 conflicts" in output

    def test_clean_grammar(self, tmp_path, capsys):
        path = tmp_path / "clean.y"
        path.write_text("s : 'a' s 'b' | %empty ;")
        assert main([str(path)]) == 0
        assert "no conflicts" in capsys.readouterr().out

    def test_corpus_grammar(self, capsys):
        exit_code = main(["--corpus", "figure7", "--quiet"])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "2 conflicts" in output
        assert "2 unifying" in output

    def test_unknown_corpus(self, capsys):
        assert main(["--corpus", "bogus"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_arguments(self, capsys):
        assert main([]) == 2

    def test_bad_grammar_file(self, tmp_path, capsys):
        path = tmp_path / "broken.y"
        path.write_text("s : @@@")
        assert main([str(path)]) == 2

    def test_list_corpus(self, capsys):
        assert main(["--list-corpus"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "SQL.1" in output

    def test_states_flag(self, grammar_file, capsys):
        main([grammar_file, "--states", "--quiet"])
        output = capsys.readouterr().out
        assert "State 0" in output

    def test_extendedsearch_flag(self, capsys):
        exit_code = main(["--corpus", "ambfailed01", "--extendedsearch", "--quiet"])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "1 unifying" in output

    def test_restricted_misses_ambfailed01(self, capsys):
        main(["--corpus", "ambfailed01", "--quiet"])
        output = capsys.readouterr().out
        assert "0 unifying" in output


class TestLintCLI:
    def test_lint_text_output_labels_source_file(self, grammar_file, capsys):
        # The dangling-else conflict is a proved ambiguity, so the
        # default --fail-on error threshold trips.
        assert main([grammar_file, "--lint"]) == 1
        output = capsys.readouterr().out
        assert "dangling.y:" in output
        assert "warning[dangling-else]" in output
        assert "error[proved-ambiguous]" in output
        assert "lint:" in output

    def test_fail_on_warning_flips_exit_code(self, grammar_file):
        assert main([grammar_file, "--lint", "--fail-on", "warning"]) == 1

    def test_corpus_lint(self, capsys):
        # figure7's conflicts are proved ambiguous, so lint exits 1.
        assert main(["--corpus", "figure7", "--lint"]) == 1
        output = capsys.readouterr().out
        assert "<figure7>:" in output
        assert "warning[lr-class]" in output
        assert "error[proved-ambiguous]" in output

    def test_clean_corpus_grammar_passes_fail_on_warning(self, capsys):
        assert main(
            ["--corpus", "clean-json", "--lint", "--fail-on", "warning"]
        ) == 0
        assert "0 errors, 0 warnings" in capsys.readouterr().out

    def test_json_format(self, grammar_file, capsys):
        import json

        assert main([grammar_file, "--lint", "--lint-format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["source"] == grammar_file
        assert any(d["rule"] == "dangling-else" for d in data["diagnostics"])

    def test_sarif_format(self, grammar_file, capsys):
        import json

        assert main([grammar_file, "--lint", "--lint-format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"
        assert doc["runs"][0]["results"]

    def test_rule_selection(self, grammar_file, capsys):
        assert main(
            [grammar_file, "--lint", "--rule", "dangling-else",
             "--fail-on", "warning"]
        ) == 1
        output = capsys.readouterr().out
        assert "dangling-else" in output
        assert "lr-class" not in output

    def test_no_rule_suppression(self, grammar_file, capsys):
        assert main(
            [grammar_file, "--lint", "--no-rule", "dangling-else",
             "--no-rule", "lr-class", "--no-rule", "proved-ambiguous",
             "--fail-on", "warning"]
        ) == 0
        assert "dangling-else" not in capsys.readouterr().out

    def test_unknown_rule_is_usage_error(self, grammar_file, capsys):
        assert main([grammar_file, "--lint", "--rule", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "dangling-else" in err  # the known-rule list is printed

    def test_fail_on_error_fires_on_error_diagnostics(self, tmp_path):
        path = tmp_path / "nonproductive.y"
        path.write_text("s : 'a' | x ;\nx : x 'b' ;\n")
        assert main([str(path), "--lint"]) == 1


class TestRobustCLI:
    def test_robust_report_file_and_completeness_exit(self, tmp_path, capsys):
        import json

        out = tmp_path / "robust.json"
        # With --robust-report the exit code tracks completeness, not
        # conflict presence: figure1 has conflicts but explains them all.
        assert main(
            ["--corpus", "figure1", "--quiet", "--robust-report", str(out)]
        ) == 0
        data = json.loads(out.read_text())
        assert data["grammar"] == "figure1"
        assert data["complete"] is True
        assert data["conflicts"] == 3
        assert [r["rung"] for r in data["reports"]] == ["unifying"] * 3
        assert all(r["verified"] for r in data["reports"])

    def test_robust_report_stdout(self, capsys):
        import json

        assert main(["--corpus", "figure1", "--quiet", "--robust-report", "-"]) == 0
        output = capsys.readouterr().out
        data = json.loads(output[output.index("{"):])
        assert data["complete"] is True

    def test_robust_report_unwritable_path(self, tmp_path, capsys):
        missing = tmp_path / "no" / "such" / "dir" / "r.json"
        assert main(
            ["--corpus", "figure1", "--quiet", "--robust-report", str(missing)]
        ) == 2
        assert "cannot write robust report" in capsys.readouterr().err

    def test_max_configurations_starves_but_stays_complete(self, tmp_path, capsys):
        import json

        out = tmp_path / "starved.json"
        assert main(
            ["--corpus", "figure1", "--quiet", "--max-configurations", "1",
             "--robust-report", str(out)]
        ) == 0
        data = json.loads(out.read_text())
        assert data["complete"] is True  # stubs fill in, nothing is dropped
        assert data["degraded"] > 0
        summary_line = capsys.readouterr().out
        assert "degraded" in summary_line

    def test_retry_timed_out_upgrades_and_reports(self, capsys):
        exit_code = main(
            ["--corpus", "figure1", "--quiet", "--time-limit", "0",
             "--cumulative-limit", "30", "--retry-timed-out"]
        )
        output = capsys.readouterr().out
        assert exit_code == 1  # conflicts exist; no --robust-report
        assert "3 unifying" in output
        assert "3/3 retries upgraded" in output

    def test_fault_at_every_stage_still_exits_zero(self, tmp_path, capsys):
        """The acceptance scenario: one fault per pipeline stage, and the
        run exits 0 with one recorded degradation naming each stage."""
        import json

        from repro.robust import FaultKind, FaultSpec, inject_faults

        out = tmp_path / "faulted.json"
        specs = [
            FaultSpec(point, FaultKind.EXCEPTION, at=0)
            for point in ("lasg", "search", "verify", "nonunifying", "render")
        ]
        with inject_faults(*specs):
            exit_code = main(
                ["--corpus", "figure1", "--robust-report", str(out)]
            )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Report rendering failed" in output  # the render fault degraded
        data = json.loads(out.read_text())
        assert data["complete"] is True
        assert data["degraded_by_stage"] == {
            "lasg": 1, "search": 1, "verify": 1, "nonunifying": 1, "render": 1
        }
        reasons = [
            d["reason"]
            for r in data["reports"]
            for d in r["degradations"]
        ]
        assert len(reasons) == 5
        assert all("injected fault" in reason for reason in reasons)

    def test_conflict_free_grammar_still_writes_robust_report(self, tmp_path):
        import json

        out = tmp_path / "clean.json"
        assert main(
            ["--corpus", "clean-json", "--quiet", "--robust-report", str(out)]
        ) == 0
        data = json.loads(out.read_text())
        assert data["complete"] is True
        assert data["conflicts"] == 0
        assert data["reports"] == []


class TestTableAlgorithm:
    def test_ielr_dissolves_nonlalr_conflicts(self, capsys):
        exit_code = main(["--corpus", "nonlalr01", "--table-algorithm", "ielr"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "no conflicts" in output
        assert "minimal" in output

    def test_lalr_default_still_conflicts(self, capsys):
        exit_code = main(["--corpus", "nonlalr01", "--quiet"])
        assert exit_code == 1
        assert "2 conflicts" in capsys.readouterr().out

    def test_unknown_algorithm_is_a_structured_error(self, capsys):
        """The fix under test: an unknown table_algorithm exits through
        the CLI error path (exit 2, 'error:' on stderr), never a bare
        ValueError traceback."""
        exit_code = main(["--corpus", "nonlalr01", "--table-algorithm", "bogus"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.startswith("error:")
        assert "unknown table algorithm 'bogus'" in captured.err
        assert "lalr, ielr, lr1" in captured.err
        assert "Traceback" not in captured.err

    def test_unknown_directive_algorithm_carries_source_line(
        self, tmp_path, capsys
    ):
        path = tmp_path / "bad.y"
        path.write_text("%algorithm bogus\ns : 'a' ;\n")
        assert main([str(path)]) == 2
        err = capsys.readouterr().err
        assert "line 1" in err
        assert "unknown table algorithm" in err

    def test_directive_respected_without_flag(self, tmp_path, capsys):
        path = tmp_path / "nonlalr.y"
        path.write_text(
            "%algorithm ielr\n"
            "s : 'a' X 'd' | 'a' Y 'e' | 'b' X 'e' | 'b' Y 'd' ;\n"
            "X : 'c' ;\nY : 'c' ;\n"
        )
        assert main([str(path)]) == 0
        assert "no conflicts" in capsys.readouterr().out


class TestProvenance:
    def test_provenance_flag_annotates_reports(self, capsys):
        exit_code = main(["--corpus", "nonlalr01", "--provenance"])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "Provenance: LALR merge artifact" in output
        assert "splits into minimal-LR(1) states" in output

    def test_genuine_verdict(self, capsys):
        main(["--corpus", "nonlalr03-genuine", "--provenance"])
        assert "Provenance: genuine LR(1) conflict" in capsys.readouterr().out

    def test_default_output_has_no_provenance_line(self, capsys):
        main(["--corpus", "nonlalr01"])
        assert "Provenance" not in capsys.readouterr().out

    def test_robust_report_includes_provenance(self, tmp_path):
        import json

        destination = tmp_path / "robust.json"
        main(
            [
                "--corpus",
                "nonlalr01",
                "--provenance",
                "--quiet",
                "--robust-report",
                str(destination),
            ]
        )
        document = json.loads(destination.read_text())
        verdicts = {entry["provenance"]["verdict"] for entry in document["reports"]}
        assert verdicts == {"LALR merge artifact"}


class TestAlgorithmCache:
    def test_cache_hits_per_algorithm(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        for _ in range(2):
            assert (
                main(
                    [
                        "--corpus",
                        "nonlalr01",
                        "--table-algorithm",
                        "ielr",
                        "--cache-dir",
                        cache_dir,
                    ]
                )
                == 0
            )
        capsys.readouterr()
        # Different construction, same grammar: a distinct cache entry,
        # so the LALR run still reports its conflicts.
        assert (
            main(
                ["--corpus", "nonlalr01", "--quiet", "--cache-dir", cache_dir]
            )
            == 1
        )
        assert "2 conflicts" in capsys.readouterr().out


class TestSignalCancellation:
    """SIGINT/SIGTERM mid-campaign: structured cancellation, exit 130."""

    def test_sigint_mid_campaign_flushes_partial_report(self, tmp_path):
        import json
        import os
        import signal
        import subprocess
        import sys
        import time

        out = tmp_path / "interrupted.json"
        env = dict(os.environ, PYTHONPATH="src")
        # C.4's unifying searches time out (paper: T/L), so a generous
        # per-conflict budget guarantees the campaign is still mid-search
        # when the signal lands.
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro",
                "--corpus", "C.4",
                "--time-limit", "60",
                "--cumulative-limit", "600",
                "--quiet",
                "--robust-report", str(out),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        time.sleep(2.0)
        process.send_signal(signal.SIGINT)
        stdout, stderr = process.communicate(timeout=60)

        assert process.returncode == 130
        assert "interrupted" in stderr
        assert "received SIGINT" in stderr
        assert "Traceback" not in stderr
        # The partial robust report was still flushed, well-formed, and
        # covers every conflict (unreached ones as cancellation stubs).
        data = json.loads(out.read_text())
        assert data["conflicts"] == len(data["reports"])
        assert any(
            any(
                d.get("error_type") == "Cancelled"
                for d in report.get("degradations", [])
            )
            for report in data["reports"]
        )

    def test_token_cancellation_in_process(self, capsys):
        """The same machinery, driven without a real signal."""
        import json

        from repro.core import CounterexampleFinder
        from repro.corpus import load as load_corpus
        from repro.automaton import build_automaton
        from repro.robust.budget import CancellationToken

        token = CancellationToken()
        token.cancel("received SIGINT")
        automaton = build_automaton(load_corpus("figure1"))
        summary = CounterexampleFinder(
            automaton, time_limit=30.0, token=token
        ).explain_all()
        # Every conflict is covered; all are cancellation stubs.
        assert summary.num_conflicts == 3
        assert len(summary.reports) == 3
        assert all(r.rung.value == "stub" for r in summary.reports)
