"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def grammar_file(tmp_path):
    path = tmp_path / "dangling.y"
    path.write_text(
        """
        %start stmt
        stmt : IF expr THEN stmt ELSE stmt
             | IF expr THEN stmt
             | ID ':=' expr ;
        expr : ID ;
        """
    )
    return str(path)


class TestCLI:
    def test_conflicted_grammar_reports(self, grammar_file, capsys):
        exit_code = main([grammar_file])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "Shift/Reduce conflict" in output
        assert "Ambiguity detected" in output
        assert "1 conflicts" in output

    def test_clean_grammar(self, tmp_path, capsys):
        path = tmp_path / "clean.y"
        path.write_text("s : 'a' s 'b' | %empty ;")
        assert main([str(path)]) == 0
        assert "no conflicts" in capsys.readouterr().out

    def test_corpus_grammar(self, capsys):
        exit_code = main(["--corpus", "figure7", "--quiet"])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "2 conflicts" in output
        assert "2 unifying" in output

    def test_unknown_corpus(self, capsys):
        assert main(["--corpus", "bogus"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_arguments(self, capsys):
        assert main([]) == 2

    def test_bad_grammar_file(self, tmp_path, capsys):
        path = tmp_path / "broken.y"
        path.write_text("s : @@@")
        assert main([str(path)]) == 2

    def test_list_corpus(self, capsys):
        assert main(["--list-corpus"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "SQL.1" in output

    def test_states_flag(self, grammar_file, capsys):
        main([grammar_file, "--states", "--quiet"])
        output = capsys.readouterr().out
        assert "State 0" in output

    def test_extendedsearch_flag(self, capsys):
        exit_code = main(["--corpus", "ambfailed01", "--extendedsearch", "--quiet"])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "1 unifying" in output

    def test_restricted_misses_ambfailed01(self, capsys):
        main(["--corpus", "ambfailed01", "--quiet"])
        output = capsys.readouterr().out
        assert "0 unifying" in output
