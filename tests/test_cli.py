"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def grammar_file(tmp_path):
    path = tmp_path / "dangling.y"
    path.write_text(
        """
        %start stmt
        stmt : IF expr THEN stmt ELSE stmt
             | IF expr THEN stmt
             | ID ':=' expr ;
        expr : ID ;
        """
    )
    return str(path)


class TestCLI:
    def test_conflicted_grammar_reports(self, grammar_file, capsys):
        exit_code = main([grammar_file])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "Shift/Reduce conflict" in output
        assert "Ambiguity detected" in output
        assert "1 conflicts" in output

    def test_clean_grammar(self, tmp_path, capsys):
        path = tmp_path / "clean.y"
        path.write_text("s : 'a' s 'b' | %empty ;")
        assert main([str(path)]) == 0
        assert "no conflicts" in capsys.readouterr().out

    def test_corpus_grammar(self, capsys):
        exit_code = main(["--corpus", "figure7", "--quiet"])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "2 conflicts" in output
        assert "2 unifying" in output

    def test_unknown_corpus(self, capsys):
        assert main(["--corpus", "bogus"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_arguments(self, capsys):
        assert main([]) == 2

    def test_bad_grammar_file(self, tmp_path, capsys):
        path = tmp_path / "broken.y"
        path.write_text("s : @@@")
        assert main([str(path)]) == 2

    def test_list_corpus(self, capsys):
        assert main(["--list-corpus"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "SQL.1" in output

    def test_states_flag(self, grammar_file, capsys):
        main([grammar_file, "--states", "--quiet"])
        output = capsys.readouterr().out
        assert "State 0" in output

    def test_extendedsearch_flag(self, capsys):
        exit_code = main(["--corpus", "ambfailed01", "--extendedsearch", "--quiet"])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "1 unifying" in output

    def test_restricted_misses_ambfailed01(self, capsys):
        main(["--corpus", "ambfailed01", "--quiet"])
        output = capsys.readouterr().out
        assert "0 unifying" in output


class TestLintCLI:
    def test_lint_text_output_labels_source_file(self, grammar_file, capsys):
        # Dangling-else warnings only: exit 0 under the default
        # --fail-on error threshold.
        assert main([grammar_file, "--lint"]) == 0
        output = capsys.readouterr().out
        assert "dangling.y:" in output
        assert "warning[dangling-else]" in output
        assert "lint:" in output

    def test_fail_on_warning_flips_exit_code(self, grammar_file):
        assert main([grammar_file, "--lint", "--fail-on", "warning"]) == 1

    def test_corpus_lint(self, capsys):
        assert main(["--corpus", "figure7", "--lint"]) == 0
        output = capsys.readouterr().out
        assert "<figure7>:" in output
        assert "warning[lr-class]" in output

    def test_clean_corpus_grammar_passes_fail_on_warning(self, capsys):
        assert main(
            ["--corpus", "clean-json", "--lint", "--fail-on", "warning"]
        ) == 0
        assert "0 errors, 0 warnings" in capsys.readouterr().out

    def test_json_format(self, grammar_file, capsys):
        import json

        assert main([grammar_file, "--lint", "--lint-format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["source"] == grammar_file
        assert any(d["rule"] == "dangling-else" for d in data["diagnostics"])

    def test_sarif_format(self, grammar_file, capsys):
        import json

        assert main([grammar_file, "--lint", "--lint-format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"
        assert doc["runs"][0]["results"]

    def test_rule_selection(self, grammar_file, capsys):
        assert main(
            [grammar_file, "--lint", "--rule", "dangling-else",
             "--fail-on", "warning"]
        ) == 1
        output = capsys.readouterr().out
        assert "dangling-else" in output
        assert "lr-class" not in output

    def test_no_rule_suppression(self, grammar_file, capsys):
        assert main(
            [grammar_file, "--lint", "--no-rule", "dangling-else",
             "--no-rule", "lr-class", "--fail-on", "warning"]
        ) == 0
        assert "dangling-else" not in capsys.readouterr().out

    def test_unknown_rule_is_usage_error(self, grammar_file, capsys):
        assert main([grammar_file, "--lint", "--rule", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "dangling-else" in err  # the known-rule list is printed

    def test_fail_on_error_fires_on_error_diagnostics(self, tmp_path):
        path = tmp_path / "nonproductive.y"
        path.write_text("s : 'a' | x ;\nx : x 'b' ;\n")
        assert main([str(path), "--lint"]) == 1
