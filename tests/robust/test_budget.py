"""Unit tests for the unified budget model (repro.robust.budget)."""

import tracemalloc

import pytest

from repro.robust import (
    AdaptiveTicker,
    Budget,
    BudgetExhausted,
    Cancelled,
    CancellationToken,
    Deadline,
    MemoryBudgetExceeded,
    SearchTimeout,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestDeadline:
    def test_after_and_remaining(self):
        clock = FakeClock(100.0)
        deadline = Deadline.after(5.0, clock)
        assert deadline.remaining() == pytest.approx(5.0)
        clock.t = 103.0
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired
        clock.t = 106.0
        assert deadline.expired
        assert deadline.remaining() == 0.0


class TestCancellationToken:
    def test_cancel_is_sticky_and_carries_reason(self):
        token = CancellationToken()
        assert not token.cancelled
        token.raise_if_cancelled()  # no-op before cancellation
        token.cancel("user hit ^C")
        assert token.cancelled
        with pytest.raises(Cancelled, match="user hit"):
            token.raise_if_cancelled("search")

    def test_budget_poll_raises_cancelled_immediately(self):
        token = CancellationToken()
        budget = Budget(token=token, stage="search")
        budget.poll()
        token.cancel()
        with pytest.raises(Cancelled):
            budget.poll()


class TestAdaptiveTicker:
    def test_first_tick_always_fires(self):
        ticker = AdaptiveTicker(clock=FakeClock())
        assert ticker.tick() is True

    def test_interval_grows_geometrically_when_fast(self):
        ticker = AdaptiveTicker(clock=FakeClock(), max_interval=8)
        intervals = []
        for _ in range(64):
            if ticker.tick():
                intervals.append(ticker.interval)
        # 2, 4, 8, then capped at 8.
        assert intervals[:4] == [2, 4, 8, 8]

    def test_slow_stretch_resets_cadence_to_one(self):
        clock = FakeClock()
        ticker = AdaptiveTicker(clock=clock, slow_stretch=0.05)
        assert ticker.tick()  # fire 1: interval -> 2
        assert not ticker.tick()
        assert ticker.tick()  # fire 2: interval -> 4
        clock.t += 1.0  # a slow expansion happens here
        for _ in range(4):
            fired = ticker.tick()
        assert fired  # the 4-tick window elapses...
        assert ticker.interval == 1  # ...and the slow stretch collapses it

    def test_interval_never_exceeds_cap(self):
        ticker = AdaptiveTicker(clock=FakeClock(), max_interval=16)
        for _ in range(10_000):
            ticker.tick()
        assert ticker.interval <= 16


class TestBudget:
    def test_node_budget_exhaustion(self):
        budget = Budget(max_nodes=3, stage="search")
        for _ in range(3):
            budget.charge()
            budget.poll()
        budget.charge()
        with pytest.raises(BudgetExhausted) as excinfo:
            budget.poll()
        assert excinfo.value.stage == "search"
        assert excinfo.value.context["nodes_spent"] == 4

    def test_zero_time_limit_raises_on_first_check(self):
        clock = FakeClock(50.0)
        budget = Budget(time_limit=0.0, clock=clock)
        with pytest.raises(SearchTimeout):
            budget.poll("lasg")

    def test_deadline_anchors_lazily(self):
        clock = FakeClock(10.0)
        budget = Budget(time_limit=5.0, clock=clock)
        clock.t = 20.0  # time passes before first use
        budget.poll()  # anchors at t=20; deadline 25
        clock.t = 24.0
        budget.check()  # still inside
        clock.t = 26.0
        with pytest.raises(SearchTimeout):
            budget.check()

    def test_elapsed_and_remaining_time(self):
        clock = FakeClock(0.0)
        budget = Budget(time_limit=10.0, clock=clock).start()
        clock.t = 4.0
        assert budget.elapsed() == pytest.approx(4.0)
        assert budget.remaining_time() == pytest.approx(6.0)

    def test_unbounded_budget_never_raises(self):
        budget = Budget()
        for _ in range(10_000):
            budget.charge()
            budget.poll()

    def test_memory_high_water_mark(self):
        was_tracing = tracemalloc.is_tracing()
        budget = Budget(max_memory_bytes=64 * 1024).start()
        try:
            ballast = bytearray(1_000_000)  # ~1 MiB, well over the budget
            with pytest.raises(MemoryBudgetExceeded):
                budget.check("verify")
            del ballast
        finally:
            budget.close()
        # close() restores the tracing state we found.
        assert tracemalloc.is_tracing() == was_tracing

    def test_sub_budget_clips_to_parent_remaining(self):
        clock = FakeClock(0.0)
        parent = Budget(time_limit=10.0, token=CancellationToken(), clock=clock)
        parent.start()
        clock.t = 8.0
        child = parent.sub(time_limit=5.0, stage="nonunifying")
        assert child.time_limit == pytest.approx(2.0)
        assert child.token is parent.token

    def test_sub_budget_unbounded_parent(self):
        parent = Budget()
        child = parent.sub(time_limit=3.0)
        assert child.time_limit == pytest.approx(3.0)
