"""The generic RetryPolicy and its Finder retrofit."""

from __future__ import annotations

import random

import pytest

from repro.core import CounterexampleFinder
from repro.grammar import load_grammar
from repro.robust import NO_RETRY, RetryPolicy, call_with_retry


class TestRetryPolicy:
    def test_defaults_are_sane(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.max_retries == 2
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_no_retry_sentinel(self):
        assert NO_RETRY.max_retries == 0
        assert not NO_RETRY.should_retry(1)

    def test_exponential_backoff_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, jitter=0.0
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_delay_is_capped(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, multiplier=10.0, max_delay=5.0,
            jitter=0.0,
        )
        assert policy.delay(4) == pytest.approx(5.0)

    def test_jitter_is_deterministic_under_a_seeded_rng(self):
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.5)
        a = [policy.delay(i, random.Random(7)) for i in range(1, 4)]
        b = [policy.delay(i, random.Random(7)) for i in range(1, 4)]
        assert a == b
        # Jitter stays within the proportional band around the base value.
        for attempt, delay in enumerate(a, start=1):
            base = min(1.0 * 2.0 ** (attempt - 1), policy.max_delay)
            assert base * 0.5 <= delay <= base * 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_delays_iterator_matches_delay(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.5, jitter=0.0)
        assert list(policy.delays()) == [
            policy.delay(1), policy.delay(2), policy.delay(3),
        ]


class TestCallWithRetry:
    def test_succeeds_first_try_without_sleeping(self):
        sleeps: list[float] = []
        result = call_with_retry(
            lambda: 42,
            RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.0),
            sleep=sleeps.append,
        )
        assert result == 42
        assert sleeps == []

    def test_retries_then_succeeds_with_recorded_backoff(self):
        attempts = {"n": 0}

        def flaky() -> str:
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise OSError("transient")
            return "ok"

        sleeps: list[float] = []
        result = call_with_retry(
            flaky,
            RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0, jitter=0.0),
            retriable=(OSError,),
            sleep=sleeps.append,
        )
        assert result == "ok"
        assert attempts["n"] == 3
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_exhaustion_reraises_the_last_error(self):
        def always_fails() -> None:
            raise OSError("permanent-looking")

        with pytest.raises(OSError):
            call_with_retry(
                always_fails,
                RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
                retriable=(OSError,),
                sleep=lambda _s: None,
            )

    def test_non_retriable_errors_pass_straight_through(self):
        calls = {"n": 0}

        def fails_differently() -> None:
            calls["n"] += 1
            raise KeyError("not retriable")

        with pytest.raises(KeyError):
            call_with_retry(
                fails_differently,
                RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0),
                retriable=(OSError,),
                sleep=lambda _s: None,
            )
        assert calls["n"] == 1

    def test_on_retry_callback_observes_each_failure(self):
        seen: list[tuple[int, str]] = []

        def flaky() -> str:
            if len(seen) < 2:
                raise OSError(f"fail-{len(seen)}")
            return "done"

        call_with_retry(
            flaky,
            RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
            retriable=(OSError,),
            sleep=lambda _s: None,
            on_retry=lambda attempt, error: seen.append((attempt, str(error))),
        )
        assert seen == [(1, "fail-0"), (2, "fail-1")]


AMBIG = """
%grammar ambiguous-expr
%start e
e : e '+' e | e '*' e | ID ;
"""


class TestFinderRetrofit:
    def _automaton(self):
        from repro.automaton import build_automaton

        return build_automaton(load_grammar(AMBIG))

    def test_bool_true_maps_to_one_immediate_retry(self):
        finder = CounterexampleFinder(self._automaton(), retry_timed_out=True)
        assert finder.retry_timed_out
        assert finder.retry_policy.max_attempts == 2
        assert finder.retry_policy.base_delay == 0.0

    def test_bool_false_maps_to_no_retry(self):
        finder = CounterexampleFinder(self._automaton(), retry_timed_out=False)
        assert not finder.retry_timed_out
        assert finder.retry_policy is NO_RETRY

    def test_policy_object_is_used_verbatim_and_sleeps_are_paced(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.25, jitter=0.0)
        sleeps: list[float] = []
        finder = CounterexampleFinder(
            self._automaton(),
            # A microscopic budget forces timeouts, exercising the pass.
            time_limit=1e-9,
            cumulative_limit=10.0,
            retry_timed_out=policy,
            retry_sleep=sleeps.append,
        )
        assert finder.retry_policy is policy
        summary = finder.explain_all()
        assert summary.num_conflicts >= 1
        # Any sleeps the retry pass made follow the policy's schedule.
        for recorded in sleeps:
            assert recorded in (pytest.approx(0.25), pytest.approx(0.5))
