"""Unit tests for the deterministic fault-injection registry."""

import pytest

from repro.robust import (
    BudgetExhausted,
    FaultKind,
    FaultSpec,
    InjectedFault,
    SearchTimeout,
    fire,
    inject_faults,
    registry,
)


class TestFaultSpec:
    @pytest.mark.parametrize(
        ("kind", "expected"),
        [
            (FaultKind.TIMEOUT, SearchTimeout),
            (FaultKind.BUDGET, BudgetExhausted),
            (FaultKind.EXCEPTION, InjectedFault),
            (FaultKind.OOM, MemoryError),
        ],
    )
    def test_kind_to_exception_mapping(self, kind, expected):
        error = FaultSpec("search", kind).build_exception()
        assert isinstance(error, expected)
        assert "search" in str(error)

    def test_structured_kinds_carry_stage_and_injected_marker(self):
        error = FaultSpec("verify", FaultKind.TIMEOUT).build_exception()
        assert isinstance(error, SearchTimeout)
        assert error.stage == "verify"
        assert error.context["injected"] is True


class TestRegistry:
    def test_unknown_point_is_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            with inject_faults(FaultSpec("typo-stage")):
                pass  # pragma: no cover
        assert not registry().active  # install failure leaves it clean

    def test_fire_is_noop_when_inactive(self):
        assert not registry().active
        fire("search")  # must not raise, must not count
        assert registry().arrivals == {}

    def test_deterministic_arrival_window(self):
        with inject_faults(FaultSpec("lasg", FaultKind.EXCEPTION, at=2, count=2)):
            fire("lasg")  # arrival 0
            fire("lasg")  # arrival 1
            with pytest.raises(InjectedFault):
                fire("lasg")  # arrival 2
            with pytest.raises(InjectedFault):
                fire("lasg")  # arrival 3
            fire("lasg")  # arrival 4 — window closed
            assert registry().fired == [
                ("lasg", FaultKind.EXCEPTION, 2),
                ("lasg", FaultKind.EXCEPTION, 3),
            ]

    def test_points_count_arrivals_independently(self):
        with inject_faults(FaultSpec("verify", at=1)):
            fire("search")
            fire("search")  # search arrivals do not advance verify's count
            fire("verify")  # verify arrival 0
            with pytest.raises(InjectedFault):
                fire("verify")  # verify arrival 1

    def test_context_manager_resets_everything(self):
        with inject_faults(FaultSpec("render", count=100)) as reg:
            with pytest.raises(InjectedFault):
                fire("render")
            assert reg.active
        assert not registry().active
        assert registry().arrivals == {}
        assert registry().fired == []
        fire("render")  # and firing is a no-op again
