"""The fault-injection matrix and the degradation ladder.

Every guarded pipeline stage crossed with every fault kind: the finder
must complete, land the conflict on the documented ladder rung, record
exactly the injected failure, and let nothing escape ``run_guarded``.
"""

from __future__ import annotations

import pytest

from repro.core import CounterexampleFinder, safe_format_report
from repro.robust import (
    Cancelled,
    CancellationToken,
    DegradedExplanation,
    FaultKind,
    FaultSpec,
    GuardOutcome,
    Rung,
    Stage,
    inject_faults,
    run_guarded,
)

ALL_KINDS = [FaultKind.TIMEOUT, FaultKind.BUDGET, FaultKind.EXCEPTION, FaultKind.OOM]

#: stage -> (finder kwargs, rung conflict 0 must land on, rung the
#: untouched conflicts land on).
#:
#: ``nonunifying`` runs with a zero cumulative budget so the search is
#: skipped for *every* conflict and the nonunifying construction is the
#: first rung attempted (hence the untouched conflicts are nonunifying
#: there, unifying everywhere else).
STAGE_MATRIX = {
    "lasg": ({}, Rung.STUB, Rung.UNIFYING),
    "search": ({}, Rung.NONUNIFYING, Rung.UNIFYING),
    "verify": ({}, Rung.NONUNIFYING, Rung.UNIFYING),
    "nonunifying": ({"cumulative_limit": 0.0}, Rung.STUB, Rung.NONUNIFYING),
}


def _only_degradation(report) -> DegradedExplanation:
    assert len(report.degradations) == 1
    return report.degradations[0]


class TestFaultMatrix:
    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
    @pytest.mark.parametrize("stage", sorted(STAGE_MATRIX))
    def test_finder_stage_fault(self, figure1, stage, kind):
        kwargs, expected_rung, untouched_rung = STAGE_MATRIX[stage]
        finder = CounterexampleFinder(figure1, **kwargs)
        with inject_faults(FaultSpec(stage, kind, at=0)):
            summary = finder.explain_all()  # must not raise

        assert summary.complete
        assert summary.num_conflicts == 3

        faulted = summary.reports[0]
        assert faulted.rung is expected_rung
        assert (faulted.counterexample is None) == (expected_rung is Rung.STUB)
        assert (faulted.stub is not None) == (expected_rung is Rung.STUB)
        degraded = _only_degradation(faulted)
        assert degraded.stage is Stage(stage)
        assert "injected fault" in degraded.reason
        assert summary.num_degraded == 1
        assert summary.degraded_by_stage == {stage: 1}

        # The fault window covered only arrival 0: the other conflicts
        # are untouched and explain normally.
        for report in summary.reports[1:]:
            assert report.rung is untouched_rung
            assert not report.degradations

    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
    def test_render_stage_fault(self, figure1, kind):
        finder = CounterexampleFinder(figure1)
        summary = finder.explain_all()
        with inject_faults(FaultSpec("render", kind, at=0)):
            text = safe_format_report(summary.reports[0])
            clean = safe_format_report(summary.reports[1])

        assert "Report rendering failed" in text
        degraded = _only_degradation(summary.reports[0])
        assert degraded.stage is Stage.RENDER
        assert "injected fault" in degraded.reason
        # Arrival 1 renders normally.
        assert "Report rendering failed" not in clean
        assert "Ambiguity detected" in clean

    def test_one_fault_per_stage_yields_complete_degraded_run(self, figure1):
        """The ISSUE acceptance shape: one fault at each of the five
        stages, one run, one recorded degradation per stage, and every
        conflict still explained at some rung."""
        finder = CounterexampleFinder(figure1)
        with inject_faults(
            *[FaultSpec(point, FaultKind.EXCEPTION, at=0)
              for point in ("lasg", "search", "verify", "nonunifying", "render")]
        ):
            summary = finder.explain_all()
            rendered = [safe_format_report(r) for r in summary.reports]

        assert summary.complete
        assert all(rendered)
        seen = {
            degraded.stage
            for report in summary.reports
            for degraded in report.degradations
        }
        assert seen == set(Stage)


class TestRunGuarded:
    def test_passes_value_through(self):
        outcome = run_guarded(Stage.SEARCH, lambda x: x + 1, 41)
        assert outcome.ok
        assert outcome.value == 42
        assert isinstance(outcome, GuardOutcome)

    def test_absorbs_memory_error(self):
        def boom():
            raise MemoryError("simulated")

        outcome = run_guarded(Stage.VERIFY, boom, artifacts={"partial": "yes"})
        assert not outcome.ok
        assert outcome.degraded.error_type == "MemoryError"
        assert outcome.degraded.artifacts == {"partial": "yes"}
        assert "MemoryError" in outcome.degraded.traceback

    def test_reraises_cancelled(self):
        def cancel():
            raise Cancelled("stop the run", stage="search")

        with pytest.raises(Cancelled):
            run_guarded(Stage.SEARCH, cancel)

    def test_reraises_keyboard_interrupt(self):
        def interrupt():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_guarded(Stage.SEARCH, interrupt)


class TestCancellation:
    def test_cancelled_run_still_yields_complete_summary(self, figure1):
        token = CancellationToken()
        token.cancel("operator abort")
        finder = CounterexampleFinder(figure1, token=token)
        summary = finder.explain_all()

        assert summary.complete
        assert summary.num_stub == summary.num_conflicts == 3
        for report in summary.reports:
            assert report.rung is Rung.STUB
            assert any(
                d.error_type == "Cancelled" and "operator abort" in d.reason
                for d in report.degradations
            )


class TestRetryPass:
    def test_retry_upgrades_timed_out_conflicts(self, figure1):
        finder = CounterexampleFinder(
            figure1,
            time_limit=0.0,
            cumulative_limit=30.0,
            retry_timed_out=True,
        )
        summary = finder.explain_all()
        assert summary.num_retried == 3
        assert summary.num_retry_upgraded == 3
        assert summary.num_unifying == 3
        assert summary.num_timeout == 0
        assert all(r.retried and r.rung is Rung.UNIFYING for r in summary.reports)

    def test_without_retry_timeouts_stay_nonunifying(self, figure1):
        finder = CounterexampleFinder(
            figure1, time_limit=0.0, cumulative_limit=30.0
        )
        summary = finder.explain_all()
        assert summary.num_unifying == 0
        assert summary.num_timeout == 3
        assert summary.complete  # nonunifying fallbacks, not stubs
        assert summary.num_retried == 0
