"""Tests for parse tables, conflicts, and precedence resolution."""

import pytest

from repro.automaton import (
    Accept,
    ConflictKind,
    ErrorAction,
    Reduce,
    Shift,
    build_lalr,
)
from repro.grammar import Terminal, load_grammar


class TestConflictDetection:
    def test_figure1_has_three_conflicts(self, figure1):
        conflicts = build_lalr(figure1).conflicts
        assert len(conflicts) == 3
        assert all(c.kind is ConflictKind.SHIFT_REDUCE for c in conflicts)
        terminals = sorted(str(c.terminal) for c in conflicts)
        assert terminals == ["+", "DIGIT", "ELSE"]

    def test_figure3_has_one_conflict(self, figure3):
        conflicts = build_lalr(figure3).conflicts
        assert len(conflicts) == 1
        assert str(conflicts[0].terminal) == "a"

    def test_figure7_has_two_conflicts(self, figure7):
        # The paper counts one conflict per (reduce item, shift item) pair:
        # A -> a . against both B -> a . b c and B -> a . b d.
        conflicts = build_lalr(figure7).conflicts
        assert len(conflicts) == 2
        assert {str(c.terminal) for c in conflicts} == {"b"}
        shift_rhs = {str(c.other_item.production) for c in conflicts}
        assert shift_rhs == {"B ::= a b c", "B ::= a b d"}

    def test_conflict_free_grammar(self, expr_grammar):
        assert not build_lalr(expr_grammar).conflicts

    def test_reduce_reduce_conflict(self):
        grammar = load_grammar("s : a 'x' | b 'x' ; a : 'q' ; b : 'q' ;")
        conflicts = build_lalr(grammar).conflicts
        assert len(conflicts) == 1
        assert conflicts[0].kind is ConflictKind.REDUCE_REDUCE
        assert str(conflicts[0].terminal) == "x"

    def test_conflict_describe(self, figure1):
        conflict = build_lalr(figure1).conflicts[0]
        text = conflict.describe()
        assert "Shift/Reduce conflict" in text
        assert f"state #{conflict.state_id}" in text


class TestPrecedenceResolution:
    AMBIG = "e : e '+' e | e '*' e | ID ;"

    def test_without_precedence_conflicts(self):
        auto = build_lalr(load_grammar(self.AMBIG))
        assert len(auto.conflicts) == 4

    def test_left_assoc_resolves_to_reduce(self):
        auto = build_lalr(load_grammar("%left '+'\n%left '*'\n" + self.AMBIG))
        assert not auto.conflicts
        # Parsing "ID + ID" and seeing another +: the action on the fully
        # built "e + e" must be reduce (left associativity).
        action = self._action_after(auto, ["ID", "+", "ID"], "+", stop_lhs="e")
        assert isinstance(action, Reduce)
        assert len(action.production.rhs) == 3

    def test_precedence_ordering_shift_on_tighter(self):
        auto = build_lalr(load_grammar("%left '+'\n%left '*'\n" + self.AMBIG))
        action = self._action_after(auto, ["ID", "+", "ID"], "*", stop_lhs="e")
        assert isinstance(action, Shift)

    def test_right_assoc_resolves_to_shift(self):
        auto = build_lalr(load_grammar("%right '+'\ne : e '+' e | ID ;"))
        assert not auto.conflicts
        action = self._action_after(auto, ["ID", "+", "ID"], "+", stop_lhs="e")
        assert isinstance(action, Shift)

    def test_nonassoc_resolves_to_error(self):
        auto = build_lalr(load_grammar("%nonassoc EQ\ne : e EQ e | ID ;"))
        assert not auto.conflicts
        action = self._action_after(auto, ["ID", "EQ", "ID"], "EQ", stop_lhs="e")
        assert action is None or isinstance(action, ErrorAction)

    def test_prec_override(self):
        grammar = load_grammar(
            """
            %left '-'
            %right UMINUS
            e : e '-' e | '-' e %prec UMINUS | ID ;
            """
        )
        auto = build_lalr(grammar)
        assert not auto.conflicts
        # "- e" followed by -: unary binds tighter, so reduce the unary rule.
        action = self._action_after(auto, ["-", "ID"], "-", stop_lhs="e")
        assert isinstance(action, Reduce)
        assert len(action.production.rhs) == 2

    def test_resolved_count_tracked(self):
        auto = build_lalr(load_grammar("%left '+'\ne : e '+' e | ID ;"))
        assert auto.tables.resolved_count > 0

    @staticmethod
    def _action_after(auto, symbols, probe, stop_lhs):
        """The parser's action on *probe* after consuming *symbols*.

        Runs the LR driver over *symbols*, then keeps reducing on the
        probe terminal until the next reduction would reduce a production
        of *stop_lhs* with the full operator shape (or no reduction
        applies); returns that decisive action.
        """
        terminal_probe = Terminal(probe)
        stack = [0]

        def act(terminal):
            return auto.tables.action_for(stack[-1], terminal)

        def reduce_with(production):
            arity = len(production.rhs)
            if arity:
                del stack[len(stack) - arity :]
            stack.append(auto.tables.goto_for(stack[-1], production.lhs))

        for name in symbols:
            terminal = Terminal(name)
            while isinstance(act(terminal), Reduce):
                reduce_with(act(terminal).production)
            action = act(terminal)
            assert isinstance(action, Shift), f"cannot shift {name}"
            stack.append(action.state_id)

        while True:
            action = act(terminal_probe)
            if isinstance(action, Reduce):
                production = action.production
                if str(production.lhs) == stop_lhs and len(production.rhs) > 1:
                    return action
                reduce_with(production)
                continue
            return action


class TestAcceptAction:
    def test_accept_on_eof(self, expr_grammar):
        from repro.grammar import END_OF_INPUT

        auto = build_lalr(expr_grammar)
        accepts = [
            state.id
            for state in auto.states
            if isinstance(auto.tables.action_for(state.id, END_OF_INPUT), Accept)
        ]
        assert len(accepts) == 1

    def test_goto_table_only_nonterminals(self, expr_grammar):
        auto = build_lalr(expr_grammar)
        for row in auto.tables.goto:
            assert all(symbol.is_nonterminal for symbol in row)

    def test_action_table_only_terminals(self, expr_grammar):
        auto = build_lalr(expr_grammar)
        for row in auto.tables.action:
            assert all(symbol.is_terminal for symbol in row)
