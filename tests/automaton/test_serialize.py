"""Tests for parse-table serialization."""

import pytest

from repro.automaton import build_lalr
from repro.automaton.serialize import (
    dump_tables,
    load_tables,
    tables_from_dict,
    tables_to_dict,
)
from repro.parsing import LRParser


class TestRoundTrip:
    def test_parser_from_loaded_tables(self, expr_grammar):
        automaton = build_lalr(expr_grammar)
        tables, grammar = load_tables(dump_tables(automaton))
        parser = LRParser.from_tables(tables, grammar)
        assert parser.accepts(["ID", "+", "ID", "*", "ID"])
        assert not parser.accepts(["ID", "+"])

    def test_trees_identical(self, expr_grammar):
        automaton = build_lalr(expr_grammar)
        direct = LRParser(automaton)
        tables, grammar = load_tables(dump_tables(automaton))
        loaded = LRParser.from_tables(tables, grammar)
        tokens = ["(", "ID", "+", "ID", ")", "*", "ID"]
        assert (
            direct.parse(tokens).bracketed() == loaded.parse(tokens).bracketed()
        )

    def test_precedence_baked_in(self):
        from repro.grammar import load_grammar

        grammar = load_grammar("%left '+'\ne : e '+' e | ID ;")
        automaton = build_lalr(grammar)
        tables, loaded_grammar = load_tables(dump_tables(automaton))
        parser = LRParser.from_tables(tables, loaded_grammar)
        tree = parser.parse(["ID", "+", "ID", "+", "ID"])
        # Left associativity survived: ((ID + ID) + ID).
        assert len(tree.children[0].children) == 3

    def test_corpus_grammar_roundtrip(self):
        from repro.corpus.sql import sql_base
        from repro.corpus.lexers import sql_lexer

        automaton = build_lalr(sql_base())
        tables, grammar = load_tables(dump_tables(automaton))
        parser = LRParser.from_tables(tables, grammar)
        tokens = sql_lexer().tokenize("SELECT a FROM t WHERE x = 1 ;")
        assert parser.accepts(tokens)


class TestSafety:
    def test_conflicted_tables_refused(self, figure1):
        automaton = build_lalr(figure1)
        payload = tables_to_dict(automaton)
        with pytest.raises(ValueError, match="unresolved conflicts"):
            tables_from_dict(payload)

    def test_conflicted_tables_opt_in(self, figure1):
        automaton = build_lalr(figure1)
        tables, grammar = tables_from_dict(
            tables_to_dict(automaton), allow_conflicts=True
        )
        parser = LRParser.from_tables(tables, grammar)
        # Yacc defaults are baked into the table entries.
        assign = "arr [ DIGIT ] := DIGIT".split()
        assert parser.accepts(
            ["IF", "DIGIT", "THEN"] + assign
        )

    def test_version_check(self, expr_grammar):
        payload = tables_to_dict(build_lalr(expr_grammar))
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            tables_from_dict(payload)

    def test_json_stability(self, expr_grammar):
        automaton = build_lalr(expr_grammar)
        assert dump_tables(automaton) == dump_tables(automaton)


class TestFullAutomatonFormat:
    """Round-trips of the full-automaton format behind repro.perf.cache."""

    def _round_trip(self, grammar):
        from repro.automaton.serialize import dump_automaton, load_automaton

        automaton = build_lalr(grammar)
        _ = automaton.tables
        return automaton, load_automaton(dump_automaton(automaton))

    def test_states_and_transitions_identical(self, figure1):
        original, loaded = self._round_trip(figure1)
        assert len(loaded.states) == len(original.states)
        for a, b in zip(original.states, loaded.states):
            assert a.items == b.items
            assert a.kernel == b.kernel
            assert {str(s): t.id for s, t in a.transitions.items()} == {
                str(s): t.id for s, t in b.transitions.items()
            }

    def test_lookaheads_identical(self, figure1):
        original, loaded = self._round_trip(figure1)
        assert loaded.lookaheads == original.lookaheads

    def test_tables_and_conflicts_identical(self, figure1):
        original, loaded = self._round_trip(figure1)
        assert loaded.tables.action == original.tables.action
        assert loaded.tables.goto == original.tables.goto
        assert [str(c) for c in loaded.conflicts] == [
            str(c) for c in original.conflicts
        ]

    def test_predecessors_rebuilt(self, figure1):
        original, loaded = self._round_trip(figure1)
        for state in original.states:
            for symbol, preds in original.lr0.predecessors[state.id].items():
                rebuilt = loaded.lr0.predecessors_on(loaded.states[state.id], symbol)
                assert {p.id for p in preds} == {p.id for p in rebuilt}

    def test_dump_is_deterministic_and_idempotent(self, figure1):
        from repro.automaton.serialize import dump_automaton, load_automaton

        automaton = build_lalr(figure1)
        text = dump_automaton(automaton)
        assert dump_automaton(automaton) == text
        assert dump_automaton(load_automaton(text)) == text

    def test_precedence_metadata_preserved(self):
        from repro.automaton.serialize import dump_automaton, load_automaton
        from repro.grammar import load_grammar

        grammar = load_grammar("%left '+'\ne : e '+' e | ID ;")
        automaton = build_lalr(grammar)
        loaded = load_automaton(dump_automaton(automaton))
        assert loaded.tables.resolved_count == automaton.tables.resolved_count
        assert loaded.tables.used_precedence == automaton.tables.used_precedence
        assert loaded.conflicts == automaton.conflicts == []

    def test_version_check(self, expr_grammar):
        from repro.automaton.serialize import (
            automaton_from_dict,
            automaton_to_dict,
        )

        payload = automaton_to_dict(build_lalr(expr_grammar))
        payload["full_version"] = 99
        with pytest.raises(ValueError, match="version"):
            automaton_from_dict(payload)

    def test_loaded_automaton_drives_the_finder(self, figure1):
        from repro.core import CounterexampleFinder
        from repro.core.report import safe_format_report

        original, loaded = self._round_trip(figure1)
        fresh = CounterexampleFinder(original).explain_all()
        decoded = CounterexampleFinder(loaded).explain_all()
        assert [safe_format_report(r) for r in fresh.reports] == [
            safe_format_report(r) for r in decoded.reports
        ]


def _encode_v1(automaton):
    """Re-encode *automaton* in the legacy v1 document shape.

    The v2 writer replaced this layout (name-keyed transitions and
    tables, lookahead pool of terminal-code *lists*); the reader keeps a
    v1 path so pre-upgrade cache entries decode instead of erroring.
    This helper reconstructs a faithful v1 document to exercise it.
    """
    from repro.automaton.tables import Accept, ErrorAction, Reduce, Shift
    from repro.grammar.emit import dump_grammar

    grammar = automaton.grammar
    tables = automaton.tables
    table = automaton.terminal_table
    terminals = [t.name for t in table.terminals]
    code_of = {t: i for i, t in enumerate(table.terminals)}

    pool_index: dict[tuple[int, ...], int] = {}
    pool: list[list[int]] = []
    states = []
    lookahead_rows = []
    for state in automaton.states:
        row = []
        for item in state.items:
            codes = tuple(
                sorted(
                    code_of[t]
                    for t in automaton.lookaheads[(state.id, item)]
                )
            )
            index = pool_index.get(codes)
            if index is None:
                index = pool_index[codes] = len(pool)
                pool.append(list(codes))
            row.append(index)
        lookahead_rows.append(row)
        states.append(
            {
                "k": len(state.kernel),
                "items": [
                    [item.production.index, item.dot] for item in state.items
                ],
                "trans": [
                    [symbol.name, target.id]
                    for symbol, target in state.transitions.items()
                ],
            }
        )

    def encode_action(action):
        if isinstance(action, Shift):
            return ["s", action.state_id]
        if isinstance(action, Reduce):
            return ["r", action.production.index]
        if isinstance(action, Accept):
            return ["a"]
        assert isinstance(action, ErrorAction)
        return ["e"]

    return {
        "full_version": 1,
        "grammar": grammar.name,
        "grammar_dsl": dump_grammar(grammar),
        "terminals": terminals,
        "la_pool": pool,
        "states": states,
        "lookaheads": lookahead_rows,
        "action": [
            {t.name: encode_action(a) for t, a in row.items()}
            for row in tables.action
        ],
        "goto": [
            {nt.name: target for nt, target in row.items()}
            for row in tables.goto
        ],
        "conflicts": [
            {
                "state": c.state_id,
                "terminal": c.terminal.name,
                "kind": c.kind.value,
                "reduce": [c.reduce_item.production.index, c.reduce_item.dot],
                "other": [c.other_item.production.index, c.other_item.dot],
            }
            for c in automaton.conflicts
        ],
        "resolved_count": tables.resolved_count,
        "used_precedence": sorted(t.name for t in tables.used_precedence),
    }


class TestFormatV2:
    """Specifics of the flat (v2) layout: pooled int masks, flat coded
    tables. The v3 writer still emits this layout with ``compact=False``,
    and the reader keeps the v2 path for pre-compaction cache entries."""

    def _payload(self, grammar):
        from repro.automaton.serialize import automaton_to_dict

        automaton = build_lalr(grammar)
        _ = automaton.tables
        return automaton, automaton_to_dict(automaton, compact=False)

    def test_version_marker_is_2(self, figure1):
        from repro.automaton.serialize import FLAT_FORMAT_VERSION

        _, payload = self._payload(figure1)
        assert FLAT_FORMAT_VERSION == 2
        assert payload["full_version"] == 2

    def test_lookahead_pool_holds_int_masks(self, figure1):
        automaton, payload = self._payload(figure1)
        assert payload["la_pool"]
        assert all(isinstance(mask, int) for mask in payload["la_pool"])
        # Pool entries are deduplicated masks over the terminal table.
        assert len(set(payload["la_pool"])) == len(payload["la_pool"])
        pool = payload["la_pool"]
        for state, row in zip(automaton.states, payload["lookaheads"]):
            for item, pool_id in zip(state.items, row):
                assert pool[pool_id] == automaton.lookahead_mask(
                    state.id, item
                )

    def test_transitions_and_tables_are_flat_coded(self, figure1):
        _, payload = self._payload(figure1)
        for state in payload["states"]:
            assert all(isinstance(v, int) for v in state["items"])
            assert all(isinstance(v, int) for v in state["trans"])
            assert len(state["items"]) % 2 == 0
            assert len(state["trans"]) % 2 == 0
        for row in payload["action"]:
            assert all(isinstance(v, int) for v in row)
            assert len(row) % 3 == 0
        for row in payload["goto"]:
            assert all(isinstance(v, int) for v in row)
            assert len(row) % 2 == 0

    def test_terminal_table_round_trips(self, figure1):
        from repro.automaton.serialize import automaton_from_dict

        automaton, payload = self._payload(figure1)
        loaded = automaton_from_dict(payload)
        assert loaded.terminal_table.terminals == (
            automaton.terminal_table.terminals
        )
        assert loaded.lookahead_masks == automaton.lookahead_masks


class TestV1Fallback:
    """Legacy v1 documents still decode; stale cache entries miss cleanly."""

    def test_v1_document_decodes(self, figure1):
        from repro.automaton.serialize import automaton_from_dict

        automaton = build_lalr(figure1)
        _ = automaton.tables
        loaded = automaton_from_dict(_encode_v1(automaton))
        assert loaded.lookaheads == automaton.lookaheads
        assert loaded.tables.action == automaton.tables.action
        assert [str(c) for c in loaded.conflicts] == [
            str(c) for c in automaton.conflicts
        ]

    def test_v1_document_drives_the_finder(self, figure1):
        from repro.core import CounterexampleFinder
        from repro.core.report import safe_format_report

        from repro.automaton.serialize import automaton_from_dict

        automaton = build_lalr(figure1)
        _ = automaton.tables
        loaded = automaton_from_dict(_encode_v1(automaton))
        fresh = CounterexampleFinder(automaton).explain_all()
        decoded = CounterexampleFinder(loaded).explain_all()
        assert [safe_format_report(r) for r in fresh.reports] == [
            safe_format_report(r) for r in decoded.reports
        ]

    def test_v1_cache_entry_is_a_clean_miss(self, figure1, tmp_path):
        """Pre-upgrade cache entries live under v1 fingerprints (the
        format version is folded into the key), so after the bump they
        are unreachable: a miss and a rebuild, never an error."""
        import hashlib
        import json

        from repro.grammar.emit import dump_grammar
        from repro.perf.cache import AutomatonCache, build_lalr_cached

        automaton = build_lalr(figure1)
        _ = automaton.tables
        # Recreate the v1-era key: same payload recipe, version 1.
        canonical = dump_grammar(figure1)
        v1_key = hashlib.sha256(
            f"repro.automaton/1\n{canonical}".encode()
        ).hexdigest()
        cache = AutomatonCache(tmp_path)
        (tmp_path / f"{v1_key}.json").write_text(
            json.dumps(_encode_v1(automaton))
        )

        rebuilt = build_lalr_cached(figure1, cache)
        assert cache.misses == 1 and cache.hits == 0
        assert len(rebuilt.states) == len(automaton.states)
        # The rebuild was stored under the v2 key; next call hits.
        assert build_lalr_cached(figure1, cache) is not None
        assert cache.hits == 1

    def test_unknown_version_cache_entry_is_a_clean_miss(
        self, figure1, tmp_path
    ):
        """Even a corrupt/foreign entry *at the current key* is a miss."""
        import json

        from repro.automaton.serialize import automaton_to_dict
        from repro.perf.cache import (
            AutomatonCache,
            build_lalr_cached,
            grammar_fingerprint,
        )

        automaton = build_lalr(figure1)
        _ = automaton.tables
        payload = automaton_to_dict(automaton)
        payload["full_version"] = 99
        cache = AutomatonCache(tmp_path)
        (tmp_path / f"{grammar_fingerprint(figure1)}.json").write_text(
            json.dumps(payload)
        )
        rebuilt = build_lalr_cached(figure1, cache)
        assert cache.misses == 1
        assert len(rebuilt.states) == len(automaton.states)


class TestFormatV3:
    """Specifics of the compact (v3) layout: column classes + row pools."""

    def _payload(self, grammar):
        from repro.automaton.serialize import automaton_to_dict

        automaton = build_lalr(grammar)
        _ = automaton.tables
        return automaton, automaton_to_dict(automaton, compact=True)

    def test_version_marker_is_3(self, figure1):
        from repro.automaton.serialize import FULL_FORMAT_VERSION

        _, payload = self._payload(figure1)
        assert FULL_FORMAT_VERSION == 3
        assert payload["full_version"] == 3
        assert payload["algorithm"] == "lalr"

    def test_tables_are_pooled(self, figure1):
        _, payload = self._payload(figure1)
        for table in (payload["action"], payload["goto"]):
            assert set(table) == {"cols", "rows", "map"}
        for interned in (payload["lookaheads"], payload["trans"]):
            assert set(interned) == {"rows", "map"}
        # Per-state transition vectors moved to the interned top-level
        # pool; the state records keep only kernel size and items.
        assert all("trans" not in state for state in payload["states"])

    def test_compact_decodes_identically_to_flat(self, figure1):
        from repro.automaton.serialize import (
            automaton_from_dict,
            automaton_to_dict,
        )

        automaton = build_lalr(figure1)
        _ = automaton.tables
        flat = automaton_from_dict(automaton_to_dict(automaton, compact=False))
        compact = automaton_from_dict(automaton_to_dict(automaton, compact=True))
        assert compact.lookahead_masks == flat.lookahead_masks
        assert compact.tables.action == flat.tables.action
        assert compact.tables.goto == flat.tables.goto

    def test_ielr_automaton_round_trips(self):
        from repro.automaton import build_ielr
        from repro.automaton.serialize import dump_automaton, load_automaton
        from repro.corpus import load as load_corpus

        automaton = build_ielr(load_corpus("nonlalr01"))
        _ = automaton.tables
        text = dump_automaton(automaton)
        loaded = load_automaton(text)
        assert loaded.algorithm == "ielr"
        assert len(loaded.states) == len(automaton.states)
        assert not loaded.conflicts
        # Split states (same kernel, distinct ids) survive the round trip.
        kernels = [state.kernel for state in loaded.states]
        assert len(kernels) > len(set(kernels))
        assert dump_automaton(loaded) == text

    def test_missing_algorithm_defaults_to_lalr(self, figure1):
        from repro.automaton.serialize import (
            automaton_from_dict,
            automaton_to_dict,
        )

        automaton = build_lalr(figure1)
        _ = automaton.tables
        payload = automaton_to_dict(automaton)
        del payload["algorithm"]
        assert automaton_from_dict(payload).algorithm == "lalr"
