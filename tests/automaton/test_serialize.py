"""Tests for parse-table serialization."""

import pytest

from repro.automaton import build_lalr
from repro.automaton.serialize import (
    dump_tables,
    load_tables,
    tables_from_dict,
    tables_to_dict,
)
from repro.parsing import LRParser


class TestRoundTrip:
    def test_parser_from_loaded_tables(self, expr_grammar):
        automaton = build_lalr(expr_grammar)
        tables, grammar = load_tables(dump_tables(automaton))
        parser = LRParser.from_tables(tables, grammar)
        assert parser.accepts(["ID", "+", "ID", "*", "ID"])
        assert not parser.accepts(["ID", "+"])

    def test_trees_identical(self, expr_grammar):
        automaton = build_lalr(expr_grammar)
        direct = LRParser(automaton)
        tables, grammar = load_tables(dump_tables(automaton))
        loaded = LRParser.from_tables(tables, grammar)
        tokens = ["(", "ID", "+", "ID", ")", "*", "ID"]
        assert (
            direct.parse(tokens).bracketed() == loaded.parse(tokens).bracketed()
        )

    def test_precedence_baked_in(self):
        from repro.grammar import load_grammar

        grammar = load_grammar("%left '+'\ne : e '+' e | ID ;")
        automaton = build_lalr(grammar)
        tables, loaded_grammar = load_tables(dump_tables(automaton))
        parser = LRParser.from_tables(tables, loaded_grammar)
        tree = parser.parse(["ID", "+", "ID", "+", "ID"])
        # Left associativity survived: ((ID + ID) + ID).
        assert len(tree.children[0].children) == 3

    def test_corpus_grammar_roundtrip(self):
        from repro.corpus.sql import sql_base
        from repro.corpus.lexers import sql_lexer

        automaton = build_lalr(sql_base())
        tables, grammar = load_tables(dump_tables(automaton))
        parser = LRParser.from_tables(tables, grammar)
        tokens = sql_lexer().tokenize("SELECT a FROM t WHERE x = 1 ;")
        assert parser.accepts(tokens)


class TestSafety:
    def test_conflicted_tables_refused(self, figure1):
        automaton = build_lalr(figure1)
        payload = tables_to_dict(automaton)
        with pytest.raises(ValueError, match="unresolved conflicts"):
            tables_from_dict(payload)

    def test_conflicted_tables_opt_in(self, figure1):
        automaton = build_lalr(figure1)
        tables, grammar = tables_from_dict(
            tables_to_dict(automaton), allow_conflicts=True
        )
        parser = LRParser.from_tables(tables, grammar)
        # Yacc defaults are baked into the table entries.
        assign = "arr [ DIGIT ] := DIGIT".split()
        assert parser.accepts(
            ["IF", "DIGIT", "THEN"] + assign
        )

    def test_version_check(self, expr_grammar):
        payload = tables_to_dict(build_lalr(expr_grammar))
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            tables_from_dict(payload)

    def test_json_stability(self, expr_grammar):
        automaton = build_lalr(expr_grammar)
        assert dump_tables(automaton) == dump_tables(automaton)


class TestFullAutomatonFormat:
    """Round-trips of the full-automaton format behind repro.perf.cache."""

    def _round_trip(self, grammar):
        from repro.automaton.serialize import dump_automaton, load_automaton

        automaton = build_lalr(grammar)
        _ = automaton.tables
        return automaton, load_automaton(dump_automaton(automaton))

    def test_states_and_transitions_identical(self, figure1):
        original, loaded = self._round_trip(figure1)
        assert len(loaded.states) == len(original.states)
        for a, b in zip(original.states, loaded.states):
            assert a.items == b.items
            assert a.kernel == b.kernel
            assert {str(s): t.id for s, t in a.transitions.items()} == {
                str(s): t.id for s, t in b.transitions.items()
            }

    def test_lookaheads_identical(self, figure1):
        original, loaded = self._round_trip(figure1)
        assert loaded.lookaheads == original.lookaheads

    def test_tables_and_conflicts_identical(self, figure1):
        original, loaded = self._round_trip(figure1)
        assert loaded.tables.action == original.tables.action
        assert loaded.tables.goto == original.tables.goto
        assert [str(c) for c in loaded.conflicts] == [
            str(c) for c in original.conflicts
        ]

    def test_predecessors_rebuilt(self, figure1):
        original, loaded = self._round_trip(figure1)
        for state in original.states:
            for symbol, preds in original.lr0.predecessors[state.id].items():
                rebuilt = loaded.lr0.predecessors_on(loaded.states[state.id], symbol)
                assert {p.id for p in preds} == {p.id for p in rebuilt}

    def test_dump_is_deterministic_and_idempotent(self, figure1):
        from repro.automaton.serialize import dump_automaton, load_automaton

        automaton = build_lalr(figure1)
        text = dump_automaton(automaton)
        assert dump_automaton(automaton) == text
        assert dump_automaton(load_automaton(text)) == text

    def test_precedence_metadata_preserved(self):
        from repro.automaton.serialize import dump_automaton, load_automaton
        from repro.grammar import load_grammar

        grammar = load_grammar("%left '+'\ne : e '+' e | ID ;")
        automaton = build_lalr(grammar)
        loaded = load_automaton(dump_automaton(automaton))
        assert loaded.tables.resolved_count == automaton.tables.resolved_count
        assert loaded.tables.used_precedence == automaton.tables.used_precedence
        assert loaded.conflicts == automaton.conflicts == []

    def test_version_check(self, expr_grammar):
        from repro.automaton.serialize import (
            automaton_from_dict,
            automaton_to_dict,
        )

        payload = automaton_to_dict(build_lalr(expr_grammar))
        payload["full_version"] = 99
        with pytest.raises(ValueError, match="version"):
            automaton_from_dict(payload)

    def test_loaded_automaton_drives_the_finder(self, figure1):
        from repro.core import CounterexampleFinder
        from repro.core.report import safe_format_report

        original, loaded = self._round_trip(figure1)
        fresh = CounterexampleFinder(original).explain_all()
        decoded = CounterexampleFinder(loaded).explain_all()
        assert [safe_format_report(r) for r in fresh.reports] == [
            safe_format_report(r) for r in decoded.reports
        ]
