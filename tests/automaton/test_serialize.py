"""Tests for parse-table serialization."""

import pytest

from repro.automaton import build_lalr
from repro.automaton.serialize import (
    dump_tables,
    load_tables,
    tables_from_dict,
    tables_to_dict,
)
from repro.parsing import LRParser


class TestRoundTrip:
    def test_parser_from_loaded_tables(self, expr_grammar):
        automaton = build_lalr(expr_grammar)
        tables, grammar = load_tables(dump_tables(automaton))
        parser = LRParser.from_tables(tables, grammar)
        assert parser.accepts(["ID", "+", "ID", "*", "ID"])
        assert not parser.accepts(["ID", "+"])

    def test_trees_identical(self, expr_grammar):
        automaton = build_lalr(expr_grammar)
        direct = LRParser(automaton)
        tables, grammar = load_tables(dump_tables(automaton))
        loaded = LRParser.from_tables(tables, grammar)
        tokens = ["(", "ID", "+", "ID", ")", "*", "ID"]
        assert (
            direct.parse(tokens).bracketed() == loaded.parse(tokens).bracketed()
        )

    def test_precedence_baked_in(self):
        from repro.grammar import load_grammar

        grammar = load_grammar("%left '+'\ne : e '+' e | ID ;")
        automaton = build_lalr(grammar)
        tables, loaded_grammar = load_tables(dump_tables(automaton))
        parser = LRParser.from_tables(tables, loaded_grammar)
        tree = parser.parse(["ID", "+", "ID", "+", "ID"])
        # Left associativity survived: ((ID + ID) + ID).
        assert len(tree.children[0].children) == 3

    def test_corpus_grammar_roundtrip(self):
        from repro.corpus.sql import sql_base
        from repro.corpus.lexers import sql_lexer

        automaton = build_lalr(sql_base())
        tables, grammar = load_tables(dump_tables(automaton))
        parser = LRParser.from_tables(tables, grammar)
        tokens = sql_lexer().tokenize("SELECT a FROM t WHERE x = 1 ;")
        assert parser.accepts(tokens)


class TestSafety:
    def test_conflicted_tables_refused(self, figure1):
        automaton = build_lalr(figure1)
        payload = tables_to_dict(automaton)
        with pytest.raises(ValueError, match="unresolved conflicts"):
            tables_from_dict(payload)

    def test_conflicted_tables_opt_in(self, figure1):
        automaton = build_lalr(figure1)
        tables, grammar = tables_from_dict(
            tables_to_dict(automaton), allow_conflicts=True
        )
        parser = LRParser.from_tables(tables, grammar)
        # Yacc defaults are baked into the table entries.
        assign = "arr [ DIGIT ] := DIGIT".split()
        assert parser.accepts(
            ["IF", "DIGIT", "THEN"] + assign
        )

    def test_version_check(self, expr_grammar):
        payload = tables_to_dict(build_lalr(expr_grammar))
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            tables_from_dict(payload)

    def test_json_stability(self, expr_grammar):
        automaton = build_lalr(expr_grammar)
        assert dump_tables(automaton) == dump_tables(automaton)
