"""Tests for the canonical LR(1) construction."""

import pytest

from repro.automaton import LR1Automaton, build_lalr
from repro.grammar import END_OF_INPUT, Terminal, load_grammar

#: LR(1) but not LALR(1): merging the two d-contexts creates an RR conflict.
LR1_NOT_LALR = """
%start S
S : 'a' A 'd' | 'b' B 'd' | 'a' B 'e' | 'b' A 'e' ;
A : 'c' ;
B : 'c' ;
"""


class TestConstruction:
    def test_start_state(self, expr_grammar):
        automaton = LR1Automaton(expr_grammar)
        start = automaton.start_state
        assert any(
            item.at_start and lookahead == END_OF_INPUT
            for item, lookahead in start.kernel
        )

    def test_more_states_than_lalr(self):
        grammar = load_grammar(LR1_NOT_LALR)
        lr1 = LR1Automaton(grammar)
        lalr = build_lalr(grammar)
        assert len(lr1) > len(lalr.states)

    def test_state_cap(self, expr_grammar):
        with pytest.raises(RuntimeError, match="exceeded"):
            LR1Automaton(expr_grammar, max_states=2)

    def test_cores_are_lr0_states(self, expr_grammar):
        lr1 = LR1Automaton(expr_grammar)
        lalr = build_lalr(expr_grammar)
        lalr_cores = {frozenset(state.items) for state in lalr.states}
        for state in lr1:
            assert state.core() in lalr_cores


class TestConflictDiscrimination:
    def test_lr1_not_lalr_grammar(self):
        """The canonical construction keeps the contexts apart; LALR
        merging conflates them into a reduce/reduce conflict."""
        grammar = load_grammar(LR1_NOT_LALR)
        assert not LR1Automaton(grammar).has_conflicts()
        assert build_lalr(grammar).conflicts

    def test_ambiguous_grammar_conflicts_everywhere(self, ambiguous_expr):
        assert LR1Automaton(ambiguous_expr).has_conflicts()
        assert build_lalr(ambiguous_expr).conflicts

    def test_clean_grammar_conflict_free_everywhere(self, expr_grammar):
        assert not LR1Automaton(expr_grammar).has_conflicts()
        assert not build_lalr(expr_grammar).conflicts


class TestLookaheads:
    def test_lookaheads_of(self, expr_grammar):
        lr1 = LR1Automaton(expr_grammar)
        start = lr1.start_state
        for item, _ in start.kernel:
            assert lr1.start_state.lookaheads_of(item) == frozenset(
                {END_OF_INPUT}
            )

    def test_merged_lookaheads_cover_all_items(self, figure1):
        lr1 = LR1Automaton(figure1)
        merged = lr1.merged_lookaheads()
        for state in lr1:
            core = state.core()
            for item, lookahead in state.items:
                assert lookahead in merged[(core, item)]
