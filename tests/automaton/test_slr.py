"""Tests for SLR(1) lookaheads and the SLR ⊇ LALR containment."""

import pytest

from repro.automaton import (
    LR0Automaton,
    build_lalr,
    compute_slr_lookaheads,
    count_slr_conflicts,
)
from repro.grammar import GrammarAnalysis, load_grammar

#: A grammar that is LALR(1) but not SLR(1) (classic example:
#: after 'd', SLR cannot decide between reducing A and shifting,
#: because FOLLOW(A) over-approximates the viable lookaheads).
LALR_NOT_SLR = """
%start S
S : A 'a' | 'b' A 'c' | 'd' 'c' | 'b' 'd' 'a' ;
A : 'd' ;
"""


class TestSLRLookaheads:
    def test_reduce_items_only(self, expr_grammar):
        lr0 = LR0Automaton(expr_grammar)
        analysis = GrammarAnalysis(expr_grammar)
        lookaheads = compute_slr_lookaheads(lr0, analysis)
        for (state_id, item), _ in lookaheads.items():
            assert item.at_end

    def test_slr_contains_lalr(self, figure1):
        auto = build_lalr(figure1)
        slr = compute_slr_lookaheads(auto.lr0, auto.analysis)
        for (state_id, item), follow_set in slr.items():
            if item.production.index == 0:
                continue
            assert auto.lookahead(state_id, item) <= follow_set

    def test_lalr_but_not_slr_grammar(self):
        grammar = load_grammar(LALR_NOT_SLR)
        auto = build_lalr(grammar)
        assert not auto.conflicts  # LALR(1): fine
        assert count_slr_conflicts(auto.lr0, auto.analysis) > 0  # SLR: conflicts

    def test_slr_clean_on_slr_grammar(self, expr_grammar):
        lr0 = LR0Automaton(expr_grammar)
        analysis = GrammarAnalysis(expr_grammar)
        assert count_slr_conflicts(lr0, analysis) == 0
