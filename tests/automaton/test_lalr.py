"""Tests for LALR(1) lookahead computation."""

import pytest

from repro.automaton import LALRAutomaton, LR1Automaton, build_lalr
from repro.grammar import END_OF_INPUT, Nonterminal, Terminal, load_grammar


@pytest.fixture
def figure1_automaton(figure1):
    return build_lalr(figure1)


class TestStartState:
    def test_start_item_has_eof_lookahead(self, figure1_automaton):
        auto = figure1_automaton
        assert END_OF_INPUT in auto.lookahead(auto.start_state, auto.start_item)

    def test_closure_items_have_lookaheads(self, figure1_automaton):
        auto = figure1_automaton
        state = auto.start_state
        for item in state.items:
            assert auto.lookahead(state, item), f"empty lookahead for {item}"


class TestFigure2Lookaheads:
    """Figure 2 of the paper shows selected lookahead sets for figure1."""

    def _state_with(self, auto, predicate):
        for state in auto.states:
            if any(predicate(item) for item in state.items):
                return state
        raise AssertionError("state not found")

    def test_state0_expr_lookaheads(self, figure1_automaton):
        # In state 0: expr -> . num has lookahead {?, +}.
        auto = figure1_automaton
        state = auto.start_state
        expr_item = next(
            item
            for item in state.items
            if str(item.production.lhs) == "expr" and len(item.production.rhs) == 1
        )
        las = {str(t) for t in auto.lookahead(state, expr_item)}
        assert las == {"?", "+"}

    def test_state0_num_lookaheads(self, figure1_automaton):
        # In state 0: num -> . DIGIT has lookahead {?, +, DIGIT}.
        auto = figure1_automaton
        state = auto.start_state
        num_item = next(
            item
            for item in state.items
            if str(item.production.lhs) == "num" and len(item.production.rhs) == 1
        )
        las = {str(t) for t in auto.lookahead(state, num_item)}
        assert las == {"?", "+", "DIGIT"}

    def test_inside_if_expr_followed_by_then(self, figure1_automaton):
        # In state 6 (after IF): expr -> . num has lookahead {THEN, +}.
        auto = figure1_automaton
        state_after_if = auto.start_state.transitions[Terminal("IF")]
        expr_item = next(
            item
            for item in state_after_if.items
            if str(item.production.lhs) == "expr" and len(item.production.rhs) == 1
        )
        las = {str(t) for t in auto.lookahead(state_after_if, expr_item)}
        assert las == {"THEN", "+"}


class TestAgainstCanonicalLR1:
    """LALR lookaheads must equal the per-core union of canonical LR(1) sets."""

    @pytest.mark.parametrize(
        "text",
        [
            "s : 'a' s 'b' | %empty ;",
            "e : e '+' t | t ; t : t '*' f | f ; f : '(' e ')' | ID ;",
            """
            %start S
            S : T | S T ;
            T : X | Y ;
            X : 'a' ;
            Y : 'a' 'a' 'b' ;
            """,
            """
            stmt : IF expr THEN stmt ELSE stmt | IF expr THEN stmt
                 | expr '?' stmt stmt | arr '[' expr ']' ':=' expr ;
            expr : num | expr '+' expr ;
            num : DIGIT | num DIGIT ;
            """,
            "s : a 'x' | b 'y' ; a : 'q' ; b : 'q' ;",
        ],
    )
    def test_lalr_equals_merged_lr1(self, text):
        grammar = load_grammar(text)
        lalr = build_lalr(grammar)
        lr1 = LR1Automaton(grammar)
        merged = lr1.merged_lookaheads()

        for state in lalr.states:
            core = frozenset(state.items)
            for item in state.items:
                expected = merged.get((core, item))
                if expected is None:
                    continue  # core mismatch cannot happen; defensive
                assert lalr.lookahead(state, item) == expected, (
                    f"state {state.id}, item {item}"
                )

    def test_lr0_and_lr1_same_cores(self, expr_grammar):
        lalr = build_lalr(expr_grammar)
        lr1 = LR1Automaton(expr_grammar)
        lalr_cores = {frozenset(state.items) for state in lalr.states}
        lr1_cores = {state.core() for state in lr1.states}
        assert lr1_cores == lalr_cores


class TestFacade:
    def test_goto(self, figure1_automaton):
        auto = figure1_automaton
        target = auto.goto(auto.start_state, Terminal("IF"))
        assert target is not None
        # After IF the parser expects an expression, not another IF.
        assert auto.goto(target, Terminal("IF")) is None
        assert auto.goto(target, Terminal("DIGIT")) is not None

    def test_tables_cached(self, figure1_automaton):
        assert figure1_automaton.tables is figure1_automaton.tables

    def test_str_rendering(self, figure1_automaton):
        text = str(figure1_automaton)
        assert "State 0" in text
        assert "{" in text
