"""Tests for the LR(0) canonical collection."""

import pytest

from repro.automaton import LR0Automaton, closure, start_item
from repro.grammar import Nonterminal, Terminal, load_grammar


@pytest.fixture
def automaton(expr_grammar):
    return LR0Automaton(expr_grammar)


class TestClosure:
    def test_start_state_closure(self, expr_grammar):
        kernel = frozenset({start_item(expr_grammar.start_production)})
        items = closure(expr_grammar, kernel)
        # START' -> . e $, e -> . e + t, e -> . t, t -> . t * f,
        # t -> . f, f -> . ( e ), f -> . ID
        assert len(items) == 7
        assert items[0].production.index == 0

    def test_closure_is_deterministic(self, expr_grammar):
        kernel = frozenset({start_item(expr_grammar.start_production)})
        assert closure(expr_grammar, kernel) == closure(expr_grammar, kernel)

    def test_closure_of_terminal_dot_adds_nothing(self, expr_grammar):
        production = next(
            p for p in expr_grammar.user_productions() if len(p.rhs) == 3
        )
        kernel = frozenset({start_item(production).advance()})
        items = closure(expr_grammar, kernel)
        # t . * f: terminal after dot, kernel only.
        if str(production.rhs[1]) == "*":
            assert len(items) == 1


class TestConstruction:
    def test_dragon_expression_grammar_state_count(self, automaton):
        # The classic LR(0) collection for this grammar has 12 states
        # (Dragon book Fig 4.31); our augmentation makes the end marker an
        # explicit symbol, adding one accept state.
        assert len(automaton) == 13

    def test_states_have_unique_kernels(self, automaton):
        kernels = [state.kernel for state in automaton]
        assert len(kernels) == len(set(kernels))

    def test_start_state_is_zero(self, automaton):
        assert automaton.start_state.id == 0
        assert automaton.states[0].items[0].production.index == 0

    def test_transitions_are_consistent(self, automaton):
        for state in automaton:
            for symbol, target in state.transitions.items():
                expected = frozenset(
                    item.advance()
                    for item in state.items
                    if item.next_symbol == symbol
                )
                assert target.kernel == expected

    def test_figure1_state_count_matches_paper(self, figure1):
        # Table 1: figure1 has 24 states.
        assert len(LR0Automaton(figure1)) == 24

    def test_figure3_state_count_matches_paper(self, figure3):
        # Table 1: figure3 has 10 states.
        assert len(LR0Automaton(figure3)) == 10

    def test_figure7_state_count_matches_paper(self, figure7):
        # Table 1: figure7 has 16 states.
        assert len(LR0Automaton(figure7)) == 16


class TestReverseEdges:
    def test_predecessors_invert_transitions(self, automaton):
        for state in automaton:
            for symbol, target in state.transitions.items():
                assert state in automaton.predecessors_on(target, symbol)

    def test_no_spurious_predecessors(self, automaton):
        for state in automaton:
            for symbol, predecessors in automaton.predecessors[state.id].items():
                for predecessor in predecessors:
                    assert predecessor.transitions[symbol] is state

    def test_start_state_has_no_predecessors(self, automaton):
        assert not automaton.predecessors[0]


class TestStateContents:
    def test_kernel_items_have_common_previous_symbol(self, automaton):
        # All dot>0 items of a state were produced by the same transition
        # symbol; the counterexample search relies on this.
        for state in automaton:
            previous = {
                item.previous_symbol
                for item in state.items
                if item.dot > 0
            }
            assert len(previous) <= 1

    def test_reduce_items_iterator(self, automaton):
        for state in automaton:
            assert all(item.at_end for item in state.reduce_items())

    def test_str_contains_items(self, automaton):
        text = str(automaton.start_state)
        assert "State 0" in text
        assert "•" in text
