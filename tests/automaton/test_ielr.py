"""Tests for the minimal-LR(1) (IELR-style) construction and provenance."""

import pytest

from repro.automaton import (
    IELRAutomaton,
    LR1Automaton,
    ProvenanceVerdict,
    build_automaton,
    build_ielr,
    build_lalr,
    canonical_conflict_signatures,
    classify_conflicts,
    conflict_signatures,
)
from repro.automaton.lr0 import LR0Automaton
from repro.core import CounterexampleFinder
from repro.corpus import load as load_corpus
from repro.grammar import load_grammar


@pytest.fixture
def nonlalr01():
    return load_corpus("nonlalr01")


@pytest.fixture
def nonlalr02():
    return load_corpus("nonlalr02")


@pytest.fixture
def genuine_sibling():
    return load_corpus("nonlalr03-genuine")


class TestConstruction:
    def test_dissolves_manufactured_conflicts(self, nonlalr01):
        lalr = build_lalr(nonlalr01)
        ielr = build_ielr(nonlalr01)
        assert len(lalr.conflicts) == 2
        assert not ielr.conflicts
        assert not conflict_signatures(ielr)

    def test_state_sandwich(self, nonlalr01):
        lalr = build_lalr(nonlalr01)
        ielr = build_ielr(nonlalr01)
        lr1 = LR1Automaton(nonlalr01)
        assert len(lalr.states) <= len(ielr.states) <= len(lr1.states)
        # The classic grammar needs exactly one extra state.
        assert len(ielr.states) == len(lalr.states) + 1

    def test_exactly_one_core_split(self, nonlalr01):
        ielr = build_ielr(nonlalr01)
        assert len(ielr.splits) == 1
        (split,) = ielr.splits
        assert len(split.state_ids) == 2
        assert ielr.split_states_for_kernel(split.kernel) == split.state_ids

    def test_congruence_propagates_splits(self, nonlalr02):
        """The two-level grammar needs its ``c``-chain split end to end."""
        lalr = build_lalr(nonlalr02)
        ielr = build_ielr(nonlalr02)
        assert len(lalr.conflicts) == 2
        assert not ielr.conflicts
        assert len(ielr.splits) == 2

    def test_lalr_grammar_unchanged(self, expr_grammar):
        """On an LALR(1) grammar the quotient reproduces the LALR automaton."""
        lalr = build_lalr(expr_grammar)
        ielr = build_ielr(expr_grammar)
        assert len(ielr.states) == len(lalr.states)
        assert not ielr.splits
        for lalr_state, ielr_state in zip(lalr.states, ielr.states):
            assert lalr_state.kernel == ielr_state.kernel
            for item in lalr_state.items:
                assert lalr.lookahead(lalr_state, item) == ielr.lookahead(
                    ielr_state, item
                )

    def test_canonical_mode_is_identity_partition(self, nonlalr01):
        canonical = build_ielr(nonlalr01, algorithm="lr1")
        lr1 = LR1Automaton(nonlalr01)
        assert canonical.algorithm == "lr1"
        assert len(canonical.states) == len(lr1.states)
        assert all(len(state.members) == 1 for state in canonical.states)

    def test_rejects_lalr(self, expr_grammar):
        with pytest.raises(ValueError, match="build_lalr"):
            build_ielr(expr_grammar, algorithm="lalr")

    def test_state_bound_raises(self):
        grammar = load_corpus("nonlalr02")
        with pytest.raises(RuntimeError):
            build_ielr(grammar, max_lr1_states=3)

    def test_shared_lr1_reused(self, nonlalr01):
        lr1 = LR1Automaton(nonlalr01)
        ielr = build_ielr(nonlalr01, lr1=lr1)
        assert ielr.canonical_state_count == len(lr1.states)


class TestDispatch:
    def test_default_is_lalr(self, expr_grammar):
        automaton = build_automaton(expr_grammar)
        assert automaton.algorithm == "lalr"
        assert not isinstance(automaton, IELRAutomaton)

    def test_algorithm_directive_respected(self):
        grammar = load_grammar(
            "%algorithm ielr\ns : 'a' X 'd' | 'a' Y 'e' | 'b' X 'e' | 'b' Y 'd' ;"
            "\nX : 'c' ;\nY : 'c' ;"
        )
        automaton = build_automaton(grammar)
        assert isinstance(automaton, IELRAutomaton)
        assert automaton.algorithm == "ielr"
        assert not automaton.conflicts

    def test_explicit_overrides_directive(self, nonlalr01):
        assert build_automaton(nonlalr01, "lr1").algorithm == "lr1"

    def test_aliases(self, nonlalr01):
        assert build_automaton(nonlalr01, "minimal-lr1").algorithm == "ielr"
        assert build_automaton(nonlalr01, "canonical").algorithm == "lr1"


class TestSignatures:
    def test_ielr_matches_canonical(self, nonlalr01, genuine_sibling):
        for grammar in (nonlalr01, genuine_sibling):
            lr1 = LR1Automaton(grammar)
            ielr = build_ielr(grammar, lr1=lr1)
            assert conflict_signatures(ielr) == canonical_conflict_signatures(lr1)

    def test_lalr_superset_of_canonical(self, nonlalr01):
        lalr = build_lalr(nonlalr01)
        lr1 = LR1Automaton(nonlalr01)
        assert conflict_signatures(lalr) > canonical_conflict_signatures(lr1)


class TestProvenance:
    def test_merge_artifacts_name_split_states(self, nonlalr01):
        lalr = build_lalr(nonlalr01)
        ielr = build_ielr(nonlalr01)
        (split,) = ielr.splits
        provenance = classify_conflicts(lalr)
        assert len(provenance) == 2
        for verdict in provenance.values():
            assert verdict.verdict is ProvenanceVerdict.MERGE_ARTIFACT
            assert verdict.split_states == split.state_ids
            assert "splits into minimal-LR(1) states" in verdict.describe()

    def test_genuine_conflict(self, genuine_sibling):
        provenance = classify_conflicts(build_lalr(genuine_sibling))
        (verdict,) = provenance.values()
        assert verdict.verdict is ProvenanceVerdict.GENUINE
        assert "survives canonical LR(1)" in verdict.detail

    def test_unknown_when_bound_exceeded(self, genuine_sibling):
        provenance = classify_conflicts(build_lalr(genuine_sibling), max_lr1_states=2)
        (verdict,) = provenance.values()
        assert verdict.verdict is ProvenanceVerdict.UNKNOWN

    def test_exact_construction_classifies_genuine_outright(self, genuine_sibling):
        ielr = build_ielr(genuine_sibling)
        provenance = classify_conflicts(ielr)
        assert all(
            v.verdict is ProvenanceVerdict.GENUINE for v in provenance.values()
        )

    def test_prebuilt_minimal_reused(self, nonlalr01):
        lalr = build_lalr(nonlalr01)
        minimal = build_ielr(nonlalr01)
        provenance = classify_conflicts(lalr, minimal=minimal)
        assert all(
            v.verdict is ProvenanceVerdict.MERGE_ARTIFACT
            for v in provenance.values()
        )


class TestDownstream:
    def test_finder_consumes_ielr_automaton(self, ambiguous_expr):
        """The counterexample pipeline runs unchanged on an IELR automaton."""
        automaton = build_ielr(ambiguous_expr)
        summary = CounterexampleFinder(automaton, time_limit=2.0).explain_all()
        assert summary.num_conflicts == len(automaton.conflicts) > 0
        assert summary.num_unifying == summary.num_conflicts

    def test_lr0_view_is_consistent(self, nonlalr01):
        ielr = build_ielr(nonlalr01)
        assert isinstance(ielr.lr0, LR0Automaton)
        for state in ielr.states:
            for symbol, target in state.transitions.items():
                assert state in ielr.lr0.predecessors[target.id][symbol]
