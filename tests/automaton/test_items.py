"""Tests for LR items."""

import pytest

from repro.automaton import Item, end_item, start_item
from repro.grammar import Nonterminal, Terminal, load_grammar


@pytest.fixture
def production(expr_grammar):
    return next(p for p in expr_grammar.user_productions() if len(p.rhs) == 3)


class TestBasics:
    def test_dot_bounds(self, production):
        with pytest.raises(ValueError):
            Item(production, -1)
        with pytest.raises(ValueError):
            Item(production, len(production.rhs) + 1)

    def test_start_and_end(self, production):
        assert start_item(production).at_start
        assert end_item(production).at_end
        assert not start_item(production).at_end

    def test_next_and_previous_symbol(self, production):
        item = Item(production, 1)
        assert item.previous_symbol == production.rhs[0]
        assert item.next_symbol == production.rhs[1]
        assert end_item(production).next_symbol is None
        assert start_item(production).previous_symbol is None

    def test_advance_retreat_roundtrip(self, production):
        item = Item(production, 1)
        assert item.advance().retreat() == item

    def test_advance_at_end_raises(self, production):
        with pytest.raises(ValueError):
            end_item(production).advance()

    def test_retreat_at_start_raises(self, production):
        with pytest.raises(ValueError):
            start_item(production).retreat()

    def test_tail(self, production):
        assert Item(production, 1).tail() == production.rhs[1:]
        assert end_item(production).tail() == ()

    def test_dot_walk(self, production):
        walk = list(end_item(production).dot_walk())
        assert len(walk) == len(production.rhs) + 1
        assert walk[0].at_start and walk[-1].at_end


class TestEqualityAndHash:
    def test_equal_items_hash_equal(self, production):
        assert Item(production, 1) == Item(production, 1)
        assert hash(Item(production, 1)) == hash(Item(production, 1))

    def test_different_dots_differ(self, production):
        assert Item(production, 0) != Item(production, 1)

    def test_usable_in_sets(self, production):
        items = {Item(production, 0), Item(production, 0), Item(production, 1)}
        assert len(items) == 2


class TestRendering:
    def test_str_places_dot(self, expr_grammar):
        production = next(
            p for p in expr_grammar.user_productions() if len(p.rhs) == 3
        )
        assert "•" in str(Item(production, 1))
        rendered = str(Item(production, 0))
        body = rendered.split("::=", 1)[1]
        assert body.strip().startswith("•")
