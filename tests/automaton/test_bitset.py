"""Tests for the bitmask lookahead representation.

The contract under test: a :class:`LookaheadBitset` is observationally a
``frozenset`` of terminals — equality, hashing, membership, set algebra,
and pickling all agree — while iteration is deterministic (terminal name
order) so reports render identically run over run.
"""

import pickle

import pytest

from repro.automaton.bitset import TerminalTable
from repro.grammar import END_OF_INPUT, Terminal


@pytest.fixture
def table():
    return TerminalTable([Terminal("b"), Terminal("a"), Terminal("c")])


class TestTerminalTable:
    def test_end_of_input_always_present(self):
        table = TerminalTable([])
        assert END_OF_INPUT in table.index
        assert table.bit_of(END_OF_INPUT) != 0

    def test_terminals_sorted_by_name(self, table):
        names = [t.name for t in table.terminals]
        assert names == sorted(names)

    def test_bit_of_unknown_terminal_is_zero(self, table):
        # Doctored conflicts reference terminals outside the grammar; a
        # zero bit makes every membership test false instead of raising.
        assert table.bit_of(Terminal("NO_SUCH_TERMINAL")) == 0

    def test_mask_of_skips_unknown_terminals(self, table):
        known = table.mask_of([Terminal("a")])
        mixed = table.mask_of([Terminal("a"), Terminal("NO_SUCH_TERMINAL")])
        assert known == mixed

    def test_mask_round_trip(self, table):
        terminals = {Terminal("a"), Terminal("c")}
        mask = table.mask_of(terminals)
        assert set(table.iter_mask(mask)) == terminals

    def test_views_are_interned(self, table):
        mask = table.mask_of([Terminal("a")])
        assert table.view(mask) is table.view(mask)

    def test_for_grammar_covers_grammar_terminals(self, expr_grammar):
        table = TerminalTable.for_grammar(expr_grammar)
        for terminal in expr_grammar.terminals:
            assert table.bit_of(terminal) != 0


class TestLookaheadBitset:
    def test_equals_frozenset(self, table):
        view = table.view(table.mask_of([Terminal("a"), Terminal("c")]))
        assert view == frozenset({Terminal("a"), Terminal("c")})
        assert frozenset({Terminal("a"), Terminal("c")}) == view
        assert view != frozenset({Terminal("a")})

    def test_hash_matches_frozenset(self, table):
        view = table.view(table.mask_of([Terminal("a"), END_OF_INPUT]))
        reference = frozenset({Terminal("a"), END_OF_INPUT})
        assert hash(view) == hash(reference)
        # Interchangeable as dict keys / set members.
        assert len({view, reference}) == 1

    def test_membership_and_len(self, table):
        view = table.view(table.mask_of([Terminal("b")]))
        assert Terminal("b") in view
        assert Terminal("a") not in view
        assert Terminal("NO_SUCH_TERMINAL") not in view
        assert len(view) == 1

    def test_iteration_in_name_order(self, table):
        view = table.view(
            table.mask_of([Terminal("c"), Terminal("a"), Terminal("b")])
        )
        assert [t.name for t in view] == sorted(t.name for t in view)

    def test_set_algebra_same_table(self, table):
        a = table.view(table.mask_of([Terminal("a"), Terminal("b")]))
        b = table.view(table.mask_of([Terminal("b"), Terminal("c")]))
        assert a | b == frozenset(
            {Terminal("a"), Terminal("b"), Terminal("c")}
        )
        assert a & b == frozenset({Terminal("b")})
        assert a - b == frozenset({Terminal("a")})
        assert a <= (a | b)
        assert not (a <= b)

    def test_set_algebra_against_frozenset(self, table):
        view = table.view(table.mask_of([Terminal("a")]))
        other = frozenset({Terminal("b")})
        assert view | other == frozenset({Terminal("a"), Terminal("b")})
        assert view & other == frozenset()
        assert view.isdisjoint(other)

    def test_pickles_to_plain_frozenset(self, table):
        # Parallel workers ship lookaheads across process boundaries; the
        # wire form is a plain frozenset so no table travels with it.
        view = table.view(table.mask_of([Terminal("a"), Terminal("c")]))
        clone = pickle.loads(pickle.dumps(view))
        assert type(clone) is frozenset
        assert clone == view

    def test_empty_view(self, table):
        view = table.view(0)
        assert len(view) == 0
        assert view == frozenset()
        assert list(view) == []
