"""Tests for the reverse-action lookup tables."""

import pytest

from repro.automaton import Item, build_lalr
from repro.grammar import Nonterminal, Terminal


@pytest.fixture
def auto(figure1):
    return build_lalr(figure1)


class TestReverseTransitions:
    def test_inverts_forward_transitions(self, auto):
        lookups = auto.lookups
        for state in auto.states:
            for item in state.items:
                if item.dot == 0:
                    assert lookups.reverse_transitions(state, item) == []
                    continue
                for pred_state, pred_item in lookups.reverse_transitions(state, item):
                    symbol = item.previous_symbol
                    assert pred_state.transitions[symbol] is state
                    assert pred_item == item.retreat()
                    assert pred_item in lookups.item_sets[pred_state.id]

    def test_complete_over_all_predecessors(self, auto):
        lookups = auto.lookups
        for state in auto.states:
            for symbol, predecessors in auto.lr0.predecessors[state.id].items():
                for item in state.items:
                    if item.previous_symbol != symbol:
                        continue
                    found = {
                        p.id for p, _ in lookups.reverse_transitions(state, item)
                    }
                    expected = {
                        p.id
                        for p in predecessors
                        if item.retreat() in lookups.item_sets[p.id]
                    }
                    assert found == expected


class TestReverseProductionSteps:
    def test_only_dot_zero_items(self, auto):
        lookups = auto.lookups
        for state in auto.states:
            for item in state.items:
                if item.dot > 0:
                    assert lookups.reverse_production_steps(state, item) == []

    def test_parents_expect_the_lhs(self, auto):
        lookups = auto.lookups
        for state in auto.states:
            for item in state.items:
                if not item.at_start:
                    continue
                for parent in lookups.reverse_production_steps(state, item):
                    assert parent.next_symbol == item.production.lhs
                    assert parent in lookups.item_sets[state.id]

    def test_parents_complete(self, auto):
        lookups = auto.lookups
        state = auto.start_state
        num_start = next(
            item
            for item in state.items
            if str(item.production.lhs) == "num" and item.at_start
        )
        parents = lookups.reverse_production_steps(state, num_start)
        parent_lhs = {str(p.production.lhs) for p in parents}
        # num is produced from expr -> . num and num -> . num DIGIT.
        assert parent_lhs == {"expr", "num"}


class TestReachability:
    def test_conflict_state_reaches_itself(self, auto):
        conflict = auto.conflicts[0]
        state = auto.states[conflict.state_id]
        states = auto.lookups.states_reaching(state, conflict.reduce_item)
        assert conflict.state_id in states

    def test_start_state_always_included(self, auto):
        for conflict in auto.conflicts:
            state = auto.states[conflict.state_id]
            states = auto.lookups.states_reaching(state, conflict.reduce_item)
            assert 0 in states

    def test_pairs_cached(self, auto):
        conflict = auto.conflicts[0]
        state = auto.states[conflict.state_id]
        first = auto.lookups.reaching_pairs(state, conflict.reduce_item)
        second = auto.lookups.reaching_pairs(state, conflict.reduce_item)
        assert first is second

    def test_reaching_pairs_closed_under_forward_steps(self, auto):
        """Every pair in the set can actually step toward the target."""
        conflict = auto.conflicts[0]
        target_state = auto.states[conflict.state_id]
        pairs = auto.lookups.reaching_pairs(target_state, conflict.reduce_item)
        target = (conflict.state_id, conflict.reduce_item)
        # Each non-target pair must have a successor inside the set.
        for state_id, item in pairs:
            if (state_id, item) == target:
                continue
            state = auto.states[state_id]
            successors = set()
            symbol = item.next_symbol
            if symbol is not None:
                if symbol in state.transitions:
                    successors.add(
                        (state.transitions[symbol].id, item.advance())
                    )
                if symbol.is_nonterminal:
                    for production in auto.grammar.productions_of(symbol):
                        successors.add((state_id, Item(production, 0)))
            assert successors & set(pairs), f"stranded pair ({state_id}, {item})"
