"""Tests for the reverse-action lookup tables."""

import pytest

from repro.automaton import Item, build_lalr
from repro.grammar import Nonterminal, Terminal


@pytest.fixture
def auto(figure1):
    return build_lalr(figure1)


class TestReverseTransitions:
    def test_inverts_forward_transitions(self, auto):
        lookups = auto.lookups
        for state in auto.states:
            for item in state.items:
                if item.dot == 0:
                    assert lookups.reverse_transitions(state, item) == []
                    continue
                for pred_state, pred_item in lookups.reverse_transitions(state, item):
                    symbol = item.previous_symbol
                    assert pred_state.transitions[symbol] is state
                    assert pred_item == item.retreat()
                    assert pred_item in lookups.item_sets[pred_state.id]

    def test_complete_over_all_predecessors(self, auto):
        lookups = auto.lookups
        for state in auto.states:
            for symbol, predecessors in auto.lr0.predecessors[state.id].items():
                for item in state.items:
                    if item.previous_symbol != symbol:
                        continue
                    found = {
                        p.id for p, _ in lookups.reverse_transitions(state, item)
                    }
                    expected = {
                        p.id
                        for p in predecessors
                        if item.retreat() in lookups.item_sets[p.id]
                    }
                    assert found == expected


class TestReverseProductionSteps:
    def test_only_dot_zero_items(self, auto):
        lookups = auto.lookups
        for state in auto.states:
            for item in state.items:
                if item.dot > 0:
                    assert lookups.reverse_production_steps(state, item) == []

    def test_parents_expect_the_lhs(self, auto):
        lookups = auto.lookups
        for state in auto.states:
            for item in state.items:
                if not item.at_start:
                    continue
                for parent in lookups.reverse_production_steps(state, item):
                    assert parent.next_symbol == item.production.lhs
                    assert parent in lookups.item_sets[state.id]

    def test_parents_complete(self, auto):
        lookups = auto.lookups
        state = auto.start_state
        num_start = next(
            item
            for item in state.items
            if str(item.production.lhs) == "num" and item.at_start
        )
        parents = lookups.reverse_production_steps(state, num_start)
        parent_lhs = {str(p.production.lhs) for p in parents}
        # num is produced from expr -> . num and num -> . num DIGIT.
        assert parent_lhs == {"expr", "num"}


class TestReachability:
    def test_conflict_state_reaches_itself(self, auto):
        conflict = auto.conflicts[0]
        state = auto.states[conflict.state_id]
        states = auto.lookups.states_reaching(state, conflict.reduce_item)
        assert conflict.state_id in states

    def test_start_state_always_included(self, auto):
        for conflict in auto.conflicts:
            state = auto.states[conflict.state_id]
            states = auto.lookups.states_reaching(state, conflict.reduce_item)
            assert 0 in states

    def test_pairs_cached(self, auto):
        conflict = auto.conflicts[0]
        state = auto.states[conflict.state_id]
        first = auto.lookups.reaching_pairs(state, conflict.reduce_item)
        second = auto.lookups.reaching_pairs(state, conflict.reduce_item)
        assert first is second

    def test_reaching_pairs_closed_under_forward_steps(self, auto):
        """Every pair in the set can actually step toward the target."""
        conflict = auto.conflicts[0]
        target_state = auto.states[conflict.state_id]
        pairs = auto.lookups.reaching_pairs(target_state, conflict.reduce_item)
        target = (conflict.state_id, conflict.reduce_item)
        # Each non-target pair must have a successor inside the set.
        for state_id, item in pairs:
            if (state_id, item) == target:
                continue
            state = auto.states[state_id]
            successors = set()
            symbol = item.next_symbol
            if symbol is not None:
                if symbol in state.transitions:
                    successors.add(
                        (state.transitions[symbol].id, item.advance())
                    )
                if symbol.is_nonterminal:
                    for production in auto.grammar.productions_of(symbol):
                        successors.add((state_id, Item(production, 0)))
            assert successors & set(pairs), f"stranded pair ({state_id}, {item})"


class TestReachingCache:
    """The bounded LRU policy on memoised ``reaching_pairs`` results."""

    def test_rejects_nonpositive_bound(self, auto):
        from repro.automaton.lookups import ReverseLookups

        with pytest.raises(ValueError):
            ReverseLookups(auto, max_cache_entries=0)

    def test_hit_and_miss_counters(self, auto):
        lookups = auto.lookups
        conflict = auto.conflicts[0]
        state = auto.states[conflict.state_id]
        before = lookups.cache_info()
        lookups.reaching_pairs(state, conflict.reduce_item)
        lookups.reaching_pairs(state, conflict.reduce_item)
        info = lookups.cache_info()
        assert info["misses"] >= before["misses"] + 1
        assert info["hits"] >= before["hits"] + 1
        assert info["max_entries"] == 128

    def test_eviction_keeps_the_cache_bounded(self, auto):
        from repro.automaton.lookups import ReverseLookups

        lookups = ReverseLookups(auto, max_cache_entries=2)
        queried = 0
        for state in auto.states:
            for item in state.items:
                lookups.reaching_pairs(state, item)
                queried += 1
                assert lookups.cache_info()["entries"] <= 2
        info = lookups.cache_info()
        assert queried > 2
        assert info["evictions"] == info["misses"] - info["entries"]

    def test_lru_order_recency_not_insertion(self, auto):
        from repro.automaton.lookups import ReverseLookups

        lookups = ReverseLookups(auto, max_cache_entries=2)
        state = auto.states[0]
        a, b = state.items[0], state.items[1]
        lookups.reaching_pairs(state, a)
        lookups.reaching_pairs(state, b)
        lookups.reaching_pairs(state, a)  # refresh a: b is now oldest
        other = auto.states[1]
        lookups.reaching_pairs(other, other.items[0])  # evicts b
        hits = lookups.cache_info()["hits"]
        lookups.reaching_pairs(state, a)
        assert lookups.cache_info()["hits"] == hits + 1

    def test_clear_drops_entries_but_keeps_counters(self, auto):
        lookups = auto.lookups
        conflict = auto.conflicts[0]
        state = auto.states[conflict.state_id]
        lookups.reaching_pairs(state, conflict.reduce_item)
        misses = lookups.cache_info()["misses"]
        lookups.clear_reaching_cache()
        info = lookups.cache_info()
        assert info["entries"] == 0
        assert info["misses"] == misses

    def test_metrics_counters_mirrored(self, auto):
        from repro.perf import metrics

        conflict = auto.conflicts[0]
        state = auto.states[conflict.state_id]
        with metrics.collecting() as collector:
            auto.lookups.reaching_pairs(state, conflict.reduce_item)
            auto.lookups.reaching_pairs(state, conflict.reduce_item)
        assert collector.counters.get("lookups.reaching.hit", 0) >= 1
