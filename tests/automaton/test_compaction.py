"""Tests for equivalence-class row/column table compaction."""

from repro.automaton import build_lalr, compact_rows, compaction_stats, restore_rows
from repro.automaton.compaction import expand_rows, intern_rows
from repro.automaton.serialize import automaton_to_dict
from repro.automaton.tables import build_tables


def as_maps(rows, stride):
    payload = stride - 1
    return [
        {
            row[i]: tuple(row[i + 1 : i + 1 + payload])
            for i in range(0, len(row), stride)
        }
        for row in rows
    ]


class TestCompactRows:
    def test_round_trip_preserves_mappings(self):
        rows = [
            [0, 5, 1, 2, 7, 3],
            [0, 5, 1, 2, 7, 3],
            [1, 9, 9],
            [],
        ]
        compacted = compact_rows(rows, 3, 4)
        restored = restore_rows(compacted, 3)
        assert as_maps(restored, 3) == as_maps(rows, 3)

    def test_identical_rows_share_pool_entry(self):
        rows = [[0, 1], [0, 1], [0, 1]]
        compacted = compact_rows(rows, 2, 1)
        assert len(compacted["rows"]) == 1
        assert compacted["map"] == [0, 0, 0]

    def test_identical_columns_share_class(self):
        # Keys 0 and 1 carry the same payload in every row: one class.
        rows = [[0, 7, 1, 7], [0, 8, 1, 8]]
        compacted = compact_rows(rows, 2, 3)
        assert compacted["cols"][0] == compacted["cols"][1]
        assert compacted["cols"][2] != compacted["cols"][0]
        assert as_maps(restore_rows(compacted, 2), 2) == as_maps(rows, 2)

    def test_empty_input(self):
        compacted = compact_rows([], 3, 0)
        assert restore_rows(compacted, 3) == []

    def test_restored_keys_ascending(self):
        rows = [[3, 1, 0, 2, 1, 3]]
        restored = restore_rows(compact_rows(rows, 2, 4), 2)
        keys = restored[0][::2]
        assert keys == sorted(keys)


class TestInternRows:
    def test_round_trip(self):
        rows = [[1, 2], [], [1, 2], [3]]
        interned = intern_rows(rows)
        assert expand_rows(interned) == rows
        assert len(interned["rows"]) == 3


class TestStats:
    def test_compaction_shrinks_real_tables(self):
        from repro.corpus import load

        from repro.automaton.tables import Accept, Reduce, Shift

        automaton = build_lalr(load("SQL.2"))
        tables = build_tables(automaton)
        terminals = sorted({t for row in tables.action for t in row}, key=str)
        code_of = {t: code for code, t in enumerate(terminals)}
        rows = []
        for row in tables.action:
            flat = []
            for terminal in sorted(row, key=str):
                action = row[terminal]
                if isinstance(action, Shift):
                    op, arg = 0, action.state_id
                elif isinstance(action, Reduce):
                    op, arg = 1, action.production.index
                elif isinstance(action, Accept):
                    op, arg = 2, -1
                else:
                    op, arg = 3, -1
                flat.extend((code_of[terminal], op, arg))
            rows.append(flat)
        stats = compaction_stats(rows, 3, len(code_of))
        assert stats["flat_ints"] == sum(len(r) for r in rows)
        assert stats["compact_ints"] < stats["flat_ints"]
        assert stats["unique_rows"] < len(rows)
        round_tripped = restore_rows(compact_rows(rows, 3, len(code_of)), 3)
        assert as_maps(round_tripped, 3) == as_maps(rows, 3)


class TestSerializerIntegration:
    def test_compact_document_smaller_than_flat(self):
        import json

        from repro.corpus import load

        automaton = build_lalr(load("SQL.2"))
        flat = json.dumps(automaton_to_dict(automaton, compact=False))
        compact = json.dumps(automaton_to_dict(automaton, compact=True))
        assert len(compact) < len(flat)
