"""The fuzz harness runs every lint pass on every fuzzed grammar.

Two invariants: (1) on a healthy lint subsystem the campaign stays
green and actually accumulates diagnostics, and (2) a lint pass that
crashes is classified as a CRASH campaign failure — the harness is the
crash-freedom canary for `repro.lint`, so a broken rule must fail the
campaign rather than vanish into an empty report.
"""

from repro.lint import get_rule
from repro.verify import FailureKind, run_fuzz_campaign

from tests.fuzz.test_fuzz_smoke import SMOKE_OPTIONS


class TestLintRunsDuringFuzzing:
    def test_campaign_accumulates_lint_diagnostics(self):
        report = run_fuzz_campaign(20, seed=0, **SMOKE_OPTIONS)
        assert report.ok, report.describe()
        # Random conflict grammars are messy; the lint passes must have
        # found plenty to say without ever crashing.
        assert report.lint_diagnostics > 0
        assert "lint diagnostics:" in report.describe()

    def test_lint_check_can_be_disabled(self):
        report = run_fuzz_campaign(
            5, seed=0, lint_check=False, **SMOKE_OPTIONS
        )
        assert report.ok, report.describe()
        assert report.lint_diagnostics == 0


class TestBrokenLintPassFailsCampaign:
    def test_raising_rule_is_classified_as_crash(self, monkeypatch):
        def explode(ctx):
            raise RuntimeError("deliberately broken lint pass")

        # Rules are registry singletons, so patching the instance method
        # breaks the pass for every grammar the campaign examines.
        monkeypatch.setattr(get_rule("unit-production"), "run", explode)
        report = run_fuzz_campaign(10, seed=0, **SMOKE_OPTIONS)
        assert not report.ok
        crashes = [
            f for f in report.failures if f.kind is FailureKind.CRASH
        ]
        assert crashes
        assert any("lint pass raised" in f.detail for f in crashes)
