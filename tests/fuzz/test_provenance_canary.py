"""Provenance canary: the fuzz harness classifies conflicts correctly.

Injects the known non-LALR fixture into the harness's examination loop
and asserts its conflicts are classified as LALR merge artifacts (and
the genuine sibling's as genuine) — so a silent regression in the
minimal-LR(1) splitter fails the fuzz battery, not just the unit tests.
"""

from repro.corpus import load
from repro.verify import run_fuzz_campaign
from repro.verify.harness import FuzzHarness


class TestInjectedNonLalrGrammar:
    def test_merge_artifacts_counted(self):
        harness = FuzzHarness(shrink=False)
        examination = harness._examine(load("nonlalr01"), seed=0)
        assert examination.conflicts == 2
        assert examination.merge_artifacts == 2
        assert examination.genuine == 0
        assert not examination.problems

    def test_genuine_sibling_counted(self):
        harness = FuzzHarness(shrink=False)
        examination = harness._examine(load("nonlalr03-genuine"), seed=0)
        assert examination.conflicts == 1
        assert examination.genuine == 1
        assert examination.merge_artifacts == 0

    def test_provenance_check_can_be_disabled(self):
        harness = FuzzHarness(shrink=False, provenance_check=False)
        examination = harness._examine(load("nonlalr01"), seed=0)
        assert examination.merge_artifacts == examination.genuine == 0


class TestCampaignCounters:
    def test_report_accumulates_and_describes_provenance(self):
        report = run_fuzz_campaign(30, seed=0, shrink=False)
        assert report.ok, report.describe()
        # Random conflicted grammars are overwhelmingly genuinely
        # ambiguous, so the genuine counter must move on a real campaign.
        assert report.genuine_conflicts > 0
        assert "conflict provenance:" in report.describe()


class TestBrokenClassifierFailsCampaign:
    def test_raising_classifier_is_classified_as_crash(self, monkeypatch):
        import repro.automaton.ielr as ielr_module

        def explode(*args, **kwargs):
            raise RuntimeError("classifier exploded")

        monkeypatch.setattr(ielr_module, "classify_conflicts", explode)
        from repro.verify.harness import FailureKind

        harness = FuzzHarness(shrink=False)
        examination = harness._examine(load("nonlalr01"), seed=0)
        assert any(
            kind is FailureKind.CRASH and "provenance" in detail
            for kind, detail in examination.problems
        )
