"""Bounded fuzz smoke runs (the `repro.verify` loop under pytest).

The full campaigns (10k+ iterations) run from the CLI; here a small,
fully deterministic slice of the same loop guards the invariants on
every test run: no validator rejections, no oracle disagreements, no
crashes — and a deliberately broken finder IS caught by the validator,
which is what makes the zero-rejection result meaningful.
"""

import pytest

import repro.verify.harness as harness_module
from repro.core.counterexample import Counterexample
from repro.core.finder import CounterexampleFinder
from repro.verify import FailureKind, FuzzHarness, run_fuzz_campaign

#: Options that keep 50 iterations comfortably under a minute while still
#: running every stage (oracle, finder, validator, GLR cross-checks).
SMOKE_OPTIONS = dict(
    time_limit=0.1,
    cumulative_limit=0.5,
    oracle_samples=4,
    max_lr1_states=1_000,
    glr_max_configurations=200,
    verify_step_budget=20_000,
)


class TestSmokeCampaign:
    def test_50_iterations_clean(self):
        report = run_fuzz_campaign(50, seed=0, **SMOKE_OPTIONS)
        assert report.grammars == 50
        # The distribution must actually exercise the pipeline.
        assert report.grammars_with_conflicts >= 5
        assert report.counterexamples_validated >= 20
        assert report.oracle_samples >= 100
        # The acceptance invariants: nothing fatal, ever.
        counts = report.counts_by_kind()
        assert counts["validator-rejection"] == 0
        assert counts["oracle-disagreement"] == 0
        assert counts["crash"] == 0
        assert report.ok, report.describe()
        # Every conflict gets exactly one ambiguity verdict.
        verdicts = (
            report.ambiguity_unambiguous
            + report.ambiguity_ambiguous
            + report.ambiguity_inconclusive
        )
        assert verdicts == report.conflicts

    def test_deterministic_across_runs(self):
        # The unifying/nonunifying/timeout split depends on wall-clock
        # search budgets, so only the time-independent fields fingerprint
        # the run: which grammars were drawn, their conflicts, and any
        # non-timeout failure (all of which replay from the seed alone).
        def fingerprint(report):
            return (
                report.grammars,
                report.grammars_with_conflicts,
                report.conflicts,
                report.counterexamples_validated,
                report.oracle_samples,
                [
                    (f.seed, f.kind, f.detail, f.grammar_text)
                    for f in report.failures
                    if f.kind is not FailureKind.FINDER_TIMEOUT
                ],
            )

        first = run_fuzz_campaign(8, seed=42, **SMOKE_OPTIONS)
        second = run_fuzz_campaign(8, seed=42, **SMOKE_OPTIONS)
        assert fingerprint(first) == fingerprint(second)

    def test_report_describe_has_verdict(self):
        report = run_fuzz_campaign(2, seed=1, **SMOKE_OPTIONS)
        text = report.describe()
        assert "fuzz campaign" in text
        assert text.rstrip().endswith("PASS") or "FAIL" in text


class _BrokenFinder(CounterexampleFinder):
    """A finder that lies: every counterexample it reports is corrupted."""

    def explain_all(self):
        summary = super().explain_all()
        for report in summary.reports:
            cex = report.counterexample
            if cex.unifying:
                # Claim two "distinct" derivations that are the same tree.
                report.counterexample = Counterexample(
                    conflict=cex.conflict,
                    unifying=True,
                    nonterminal=cex.nonterminal,
                    derivation1=cex.derivation1,
                    derivation2=cex.derivation1,
                )
            else:
                # Pass off a nonunifying counterexample as an ambiguity
                # proof (the claim the paper is careful never to make).
                report.counterexample = Counterexample(
                    conflict=cex.conflict,
                    unifying=True,
                    nonterminal=cex.nonterminal,
                    derivation1=cex.derivation1,
                    derivation2=cex.derivation2,
                )
        return summary


class TestValidatorCatchesBrokenFinder:
    """The validator must reject what a buggy finder fabricates."""

    def test_broken_finder_rejected(self, monkeypatch):
        monkeypatch.setattr(
            harness_module, "CounterexampleFinder", _BrokenFinder
        )
        # Seed 0 generates a grammar with 4 conflicts (deterministically).
        harness = FuzzHarness(shrink=False, **SMOKE_OPTIONS)
        report = harness.run(1, seed=0)
        assert report.conflicts > 0
        rejections = [
            f
            for f in report.failures
            if f.kind is FailureKind.VALIDATOR_REJECTION
        ]
        assert rejections, report.describe()
        assert not report.ok

    def test_honest_finder_accepted(self):
        # Control: the same seed with the real finder validates cleanly.
        harness = FuzzHarness(shrink=False, **SMOKE_OPTIONS)
        report = harness.run(1, seed=0)
        assert report.conflicts > 0
        assert report.counts_by_kind()["validator-rejection"] == 0


@pytest.mark.slow
class TestExtendedCampaign:
    """A longer slice, kept out of the default run (`-m slow` opts in)."""

    def test_500_iterations_clean(self):
        report = run_fuzz_campaign(500, seed=0, **SMOKE_OPTIONS)
        assert report.ok, report.describe()
