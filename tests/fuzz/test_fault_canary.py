"""Fault-injection canary: the fuzz loop survives a faulty pipeline.

The lint canary (`test_lint_canary.py`) proves the fuzz loop catches
*finder* bugs; this canary proves the inverse robustness property — with
whole pipeline stages failing persistently, the campaign still completes
without a crash, every conflict lands on some ladder rung, and the
degradations are surfaced in the campaign report rather than swallowed.
"""

from repro.robust import FaultKind, FaultSpec, inject_faults
from repro.verify import run_fuzz_campaign

from tests.fuzz.test_fuzz_smoke import SMOKE_OPTIONS

PERSISTENT = 1_000_000_000  # covers every arrival in a short campaign


class TestFaultCanary:
    def test_campaign_survives_persistent_search_faults(self):
        with inject_faults(
            FaultSpec("search", FaultKind.EXCEPTION, count=PERSISTENT)
        ):
            report = run_fuzz_campaign(6, seed=0, **SMOKE_OPTIONS)
        assert report.counts_by_kind()["crash"] == 0
        assert report.conflicts > 0
        # Every search failed, so every conflict degraded — and the
        # degradations are visible in the campaign report.
        assert report.degraded >= report.conflicts
        assert "degraded explanations" in report.describe()

    def test_campaign_survives_faults_at_every_structural_stage(self):
        specs = [
            FaultSpec(point, FaultKind.EXCEPTION, count=PERSISTENT)
            for point in ("lasg", "search", "verify", "nonunifying")
        ]
        with inject_faults(*specs):
            report = run_fuzz_campaign(6, seed=0, **SMOKE_OPTIONS)
        assert report.counts_by_kind()["crash"] == 0
        assert report.conflicts > 0
        # With both counterexample rungs disabled, every conflict falls
        # all the way to the stub rung — none are dropped.
        assert report.stubs == report.conflicts

    def test_stub_without_active_faults_is_flagged(self, monkeypatch):
        """A stub in a *clean* run means a real pipeline failure: the
        harness must classify it as a crash-grade problem."""
        import repro.verify.harness as harness_module
        from repro.core.finder import CounterexampleFinder
        from repro.robust import Rung

        class _StubbingFinder(CounterexampleFinder):
            def explain_all(self):
                summary = super().explain_all()
                for entry in summary.reports:
                    entry.counterexample = None
                    entry.rung = Rung.STUB
                    entry.stub = self._stub(entry.conflict, None)
                summary.num_stub = len(summary.reports)
                return summary

        monkeypatch.setattr(
            harness_module, "CounterexampleFinder", _StubbingFinder
        )
        harness = harness_module.FuzzHarness(shrink=False, **SMOKE_OPTIONS)
        report = harness.run(1, seed=0)  # seed 0 has conflicts
        assert report.conflicts > 0
        assert report.counts_by_kind()["crash"] > 0
        assert not report.ok
