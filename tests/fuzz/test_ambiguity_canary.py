"""Ambiguity canary: the fuzz harness walks every conflict to a verdict.

Mirrors the provenance canary: the known fixtures are injected into the
harness's examination loop and their SR pair-walk verdicts pinned, so a
silent regression in the walker (wrong verdict, invalid witness, or an
outright crash) fails the fuzz battery rather than only the unit tests.
"""

from repro.corpus import load
from repro.verify import run_fuzz_campaign
from repro.verify.harness import FailureKind, FuzzHarness


class TestInjectedFixtures:
    def test_nonlalr_merge_artifacts_proved_unambiguous(self):
        harness = FuzzHarness(shrink=False)
        examination = harness._examine(load("nonlalr01"), seed=0)
        assert examination.conflicts == 2
        assert examination.ambiguity_unambiguous == 2
        assert examination.ambiguity_ambiguous == 0
        assert examination.ambiguity_inconclusive == 0
        assert not examination.problems

    def test_genuine_sibling_proved_ambiguous_with_valid_witness(self):
        harness = FuzzHarness(shrink=False)
        examination = harness._examine(load("nonlalr03-genuine"), seed=0)
        assert examination.conflicts == 1
        assert examination.ambiguity_ambiguous == 1
        assert examination.ambiguity_unambiguous == 0
        # The witness is re-proved by the Earley recount inside the
        # harness; a rejection would surface as a problem here.
        assert not examination.problems

    def test_verdicts_partition_the_conflict_set(self):
        for name in ("nonlalr01", "nonlalr02", "nonlalr03-genuine"):
            harness = FuzzHarness(shrink=False)
            examination = harness._examine(load(name), seed=0)
            total = (
                examination.ambiguity_unambiguous
                + examination.ambiguity_ambiguous
                + examination.ambiguity_inconclusive
            )
            assert total == examination.conflicts, name

    def test_ambiguity_check_can_be_disabled(self):
        harness = FuzzHarness(shrink=False, ambiguity_check=False)
        examination = harness._examine(load("nonlalr01"), seed=0)
        assert examination.ambiguity_unambiguous == 0
        assert examination.ambiguity_ambiguous == 0
        assert examination.ambiguity_inconclusive == 0


class TestCampaignCounters:
    def test_report_accumulates_and_describes_verdicts(self):
        report = run_fuzz_campaign(30, seed=0, shrink=False)
        assert report.ok, report.describe()
        total = (
            report.ambiguity_unambiguous
            + report.ambiguity_ambiguous
            + report.ambiguity_inconclusive
        )
        assert total == report.conflicts
        # Random conflicted grammars are overwhelmingly genuinely
        # ambiguous, so the ambiguous counter must move on a campaign.
        assert report.ambiguity_ambiguous > 0
        assert "ambiguity verdicts:" in report.describe()


class TestBrokenWalkerFailsCampaign:
    def test_raising_walker_is_classified_as_crash(self, monkeypatch):
        import repro.analysis as analysis_module

        def explode(*args, **kwargs):
            raise RuntimeError("walker exploded")

        monkeypatch.setattr(analysis_module, "analyze_conflicts", explode)

        harness = FuzzHarness(shrink=False)
        examination = harness._examine(load("nonlalr01"), seed=0)
        assert any(
            kind is FailureKind.CRASH and "ambiguity" in detail
            for kind, detail in examination.problems
        )
