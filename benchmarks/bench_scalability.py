"""E5 — scalability with grammar size (§7.4).

The paper's claim: "the running time of our algorithm only increases
marginally on larger grammars, such as those for mainstream programming
languages."

Regenerated two ways:

* a synthetic grammar family of growing size — ``k`` stratified operator
  levels plus one injected dangling-else conflict, so the *conflict* is
  identical while the grammar (and automaton) grows around it;
* the natural size ladder of the corpus language grammars (SQL → Pascal
  → C → Java), timing the same defect class (dangling else / collapsed
  operator) at each size.
"""

from __future__ import annotations

import pytest

from repro.automaton import build_lalr
from repro.core import CounterexampleFinder
from repro.corpus import get
from repro.grammar import GrammarBuilder

_SYNTHETIC: dict[int, tuple[int, int, float]] = {}
_NATURAL: dict[str, tuple[int, float]] = {}


def synthetic_grammar(levels: int):
    """An if-else language over an expression grammar with *levels* strata.

    Only the dangling else conflicts; the expression tower just inflates
    the grammar and its automaton.
    """
    builder = GrammarBuilder(f"synthetic-{levels}")
    builder.rule("stmt", "IF e0 THEN stmt ELSE stmt")
    builder.rule("stmt", "IF e0 THEN stmt")
    builder.rule("stmt", "ID ASSIGN e0")
    builder.rule("stmt", "LBRACE stmt RBRACE")
    for level in range(levels):
        this, below = f"e{level}", f"e{level + 1}"
        builder.rule(this, f"{this} OP{level} {below}")
        builder.rule(this, below)
    builder.rule(f"e{levels}", "ID")
    builder.rule(f"e{levels}", "NUM")
    builder.rule(f"e{levels}", f"LPAREN e0 RPAREN")
    return builder.build(start="stmt")


@pytest.mark.parametrize("levels", [1, 5, 10, 20, 40, 80])
def test_synthetic_scaling(benchmark, levels):
    grammar = synthetic_grammar(levels)
    automaton = build_lalr(grammar)
    assert len(automaton.conflicts) == 1  # only the dangling else

    def run():
        finder = CounterexampleFinder(automaton, time_limit=10.0)
        return finder.explain_all()

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    assert summary.num_unifying == 1
    _SYNTHETIC[levels] = (
        grammar.num_user_productions,
        len(automaton.states),
        summary.total_time,
    )


@pytest.mark.parametrize(
    "name", ["figure1", "SQL.1", "Pascal.2", "C.1", "Java.1"]
)
def test_natural_size_ladder(benchmark, name):
    """The same defect classes across the corpus size ladder."""
    automaton = build_lalr(get(name).load())

    def run():
        finder = CounterexampleFinder(automaton, time_limit=5.0)
        return finder.explain_all()

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    answered = summary.num_unifying + summary.num_nonunifying
    per_conflict = summary.total_time / answered if answered else float("nan")
    _NATURAL[name] = (len(automaton.states), per_conflict)
    assert summary.num_unifying > 0


def print_report() -> None:
    """Called from conftest at session end."""
    if _SYNTHETIC:
        print("\n\n=== E5a: synthetic scaling (same conflict, growing grammar) ===")
        print(f"{'levels':>7} {'prods':>6} {'states':>7} {'time':>9}")
        for levels, (prods, states, elapsed) in sorted(_SYNTHETIC.items()):
            print(f"{levels:>7} {prods:>6} {states:>7} {elapsed:>8.3f}s")
    if _NATURAL:
        print("\n=== E5b: natural size ladder (per-conflict time) ===")
        for name, (states, per_conflict) in _NATURAL.items():
            print(f"  {name:10} states={states:<5} {per_conflict:.3f}s/conflict")
