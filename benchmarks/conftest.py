"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates part of the paper's evaluation (§7 / Table 1).
Timings here are *pure Python on whatever machine runs them*, so absolute
numbers differ from the paper's Java implementation; the claims being
reproduced are the shapes — which conflicts unify, where the search times
out, how the per-conflict time scales with grammar size, and how far
ahead of brute-force enumeration the conflict-driven search is.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--table1-full",
        action="store_true",
        default=False,
        help="run the heavy Table 1 rows (Java.2/Java.4, C.4, java-ext*) "
        "with the paper's full 5 s / 2 min budgets",
    )


@pytest.fixture(scope="session")
def full_budgets(request) -> bool:
    return request.config.getoption("--table1-full")


def pytest_sessionfinish(session, exitstatus):
    """Print each harness's regenerated table/series after the run.

    The same text is appended to ``benchmarks/last_report.txt`` so the
    regenerated tables survive terminal scrollback.
    """
    import contextlib
    import importlib
    import io
    import pathlib

    buffer = io.StringIO()
    for module_name in (
        "bench_table1",
        "bench_effectiveness",
        "bench_efficiency",
        "bench_scalability",
        "bench_ablation",
    ):
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            continue
        report = getattr(module, "print_report", None)
        if report is not None:
            with contextlib.redirect_stdout(buffer):
                report()
    text = buffer.getvalue()
    if text.strip():
        print(text)
        report_path = pathlib.Path(__file__).parent / "last_report.txt"
        with report_path.open("a", encoding="utf-8") as handle:
            handle.write(text)
