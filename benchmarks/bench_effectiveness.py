"""E2/E3 — effectiveness (§7.2).

Two claims are regenerated:

* **E2**: every unifying counterexample the tool reports is genuinely
  ambiguous (two distinct Earley derivations of the same sentential
  form) — the paper's correctness claim for the unifying search;
* **E3**: the prior-PPG strategy, which ignores lookahead symbols,
  produces *misleading* counterexamples on several benchmark grammars
  (the paper lists ten, including figure1 and the language variants),
  while our algorithm's counterexamples are always valid.
"""

from __future__ import annotations

import pytest

from repro.automaton import build_lalr
from repro.baselines import PPGBaseline
from repro.core import CounterexampleFinder
from repro.corpus import get
from repro.parsing import EarleyParser

#: Small/medium ambiguous grammars for per-conflict verification.
AMBIGUOUS_GRAMMARS = [
    "figure1", "figure7", "abcd", "simp2", "xi", "eqn",
    "stackexc01", "stackovf02", "stackovf03", "stackovf05",
    "stackovf07", "stackovf10",
    "SQL.1", "SQL.2", "SQL.3", "SQL.4", "SQL.5",
    "Pascal.2", "Pascal.3", "Pascal.4", "Pascal.5",
    "C.1", "C.5", "Java.1", "Java.5",
]

#: Grammars on which the PPG baseline is expected to mislead (a subset of
#: the paper's ten; our corpus reconstructions expose these).
PPG_MISLEADING = ["figure1", "simp2", "C.2", "Java.1", "Java.3"]

_VERIFIED: dict[str, tuple[int, int]] = {}
_MISLEADING: dict[str, tuple[int, int]] = {}


@pytest.mark.parametrize("name", AMBIGUOUS_GRAMMARS)
def test_unifying_counterexamples_verified(benchmark, name):
    """E2: report + independently verify every unifying counterexample."""
    automaton = build_lalr(get(name).load())
    earley = EarleyParser(automaton.grammar)

    def run():
        finder = CounterexampleFinder(
            automaton, time_limit=5.0, cumulative_limit=60.0, verify=False
        )
        summary = finder.explain_all()
        verified = 0
        unifying = 0
        for report in summary.reports:
            example = report.counterexample
            if not example.unifying:
                continue
            unifying += 1
            if earley.is_ambiguous_form(
                example.nonterminal, example.example1_symbols()
            ):
                verified += 1
        return unifying, verified

    unifying, verified = benchmark.pedantic(run, rounds=1, iterations=1)
    _VERIFIED[name] = (unifying, verified)
    assert verified == unifying, f"{name}: {unifying - verified} unverified"
    assert unifying > 0, f"{name} should produce unifying counterexamples"


@pytest.mark.parametrize("name", PPG_MISLEADING)
def test_ppg_baseline_misleads(benchmark, name):
    """E3: the lookahead-ignoring baseline produces invalid counterexamples."""
    automaton = build_lalr(get(name).load())

    def run():
        return PPGBaseline(automaton).misleading_conflicts()

    misleading = benchmark.pedantic(run, rounds=1, iterations=1)
    _MISLEADING[name] = (len(automaton.conflicts), len(misleading))
    assert misleading, f"PPG should mislead on {name}"


def print_report() -> None:
    """Called from conftest at session end."""
    if _VERIFIED:
        print("\n\n=== E2: unifying counterexamples verified ambiguous ===")
        for name, (unifying, verified) in _VERIFIED.items():
            print(f"  {name:14} {verified}/{unifying} verified")
    if _MISLEADING:
        print("\n=== E3: misleading PPG counterexamples (paper lists 10 grammars) ===")
        for name, (conflicts, misleading) in _MISLEADING.items():
            print(f"  {name:14} {misleading}/{conflicts} conflicts misled by PPG")
