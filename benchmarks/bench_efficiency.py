"""E4 — efficiency vs enumeration-based ambiguity detection (§7.3).

The paper compares per-conflict counterexample time against the fastest
ambiguity detector available to the authors (a grammar-filtering
CFGAnalyzer variant), reporting a 10.7x geometric-mean speedup on the
BV10 grammars, with the enumeration-based tool occasionally taking
minutes to hours (C.2: 1.11 h).

CFGAnalyzer itself is unavailable offline; our stand-in for the
enumeration family is :class:`repro.baselines.BruteForceDetector`
(AMBER-style breadth-first sentence enumeration with Earley derivation
counting — the approach the paper describes as accurate but prohibitively
slow). The claim regenerated here is the *shape*: the conflict-driven
search answers per conflict one to several orders of magnitude faster
than enumeration-based detection finds a single witness, and the gap
widens with grammar size.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.automaton import build_lalr
from repro.baselines import BruteForceDetector, FilteredBruteForce
from repro.core import CounterexampleFinder
from repro.corpus import get

#: Ambiguous BV10 grammars where both approaches get a fair shot.
GRAMMARS = [
    "SQL.1", "SQL.2", "SQL.3", "SQL.4", "SQL.5",
    "Pascal.2", "Pascal.3", "Pascal.4", "Pascal.5",
    "C.1", "C.5",
    "Java.1", "Java.3", "Java.5",
]

#: Brute-force budget per grammar. The paper's counterpart numbers run
#: to hours; this cap keeps the harness bounded while still demonstrating
#: the blow-up (a capped run counts as >= the cap in the speedup figure).
BRUTE_FORCE_BUDGET = 12.0

_RESULTS: dict[str, tuple[float, float, bool, float, bool]] = {}


@pytest.mark.parametrize("name", GRAMMARS)
def test_conflict_search_vs_bruteforce(benchmark, name):
    automaton = build_lalr(get(name).load())
    grammar = automaton.grammar

    def ours():
        finder = CounterexampleFinder(
            automaton, time_limit=5.0, cumulative_limit=60.0
        )
        return finder.explain_all()

    summary = benchmark.pedantic(ours, rounds=1, iterations=1)
    answered = summary.num_unifying + summary.num_nonunifying
    per_conflict = summary.total_time / answered if answered else float("nan")

    started = time.monotonic()
    brute = BruteForceDetector(
        grammar, max_length=14, time_limit=BRUTE_FORCE_BUDGET
    ).run()
    brute_time = time.monotonic() - started

    # The paper's closing suggestion (§7.3): grammar filtering. The
    # conflict-guided filtered detector enumerates from the candidate
    # unifying nonterminals instead of the start symbol.
    started = time.monotonic()
    filtered = FilteredBruteForce(
        automaton, max_length=14, time_limit=BRUTE_FORCE_BUDGET
    ).run(automaton.conflicts[0])
    filtered_time = time.monotonic() - started

    _RESULTS[name] = (
        per_conflict, brute_time, brute.ambiguous, filtered_time,
        filtered.ambiguous,
    )
    # Our per-conflict time must beat the enumeration baseline.
    assert per_conflict < brute_time or brute_time >= BRUTE_FORCE_BUDGET


def print_report() -> None:
    """Called from conftest at session end."""
    if not _RESULTS:
        return
    print("\n\n=== E4: per-conflict time vs enumeration-based detection ===")
    print(
        f"{'grammar':12} {'ours/conflict':>14} {'brute-force':>12} "
        f"{'filtered':>10} {'speedup':>9}"
    )
    ratios = []
    for name, (ours, brute, found, filtered, filtered_found) in _RESULTS.items():
        capped = "" if found else "*"
        filtered_capped = "" if filtered_found else "*"
        ratio = brute / ours if ours > 0 else float("inf")
        ratios.append(ratio)
        print(
            f"{name:12} {ours:>12.4f}s {brute:>10.2f}s{capped:1} "
            f"{filtered:>8.2f}s{filtered_capped:1} {ratio:>8.1f}x"
        )
    geomean = math.exp(sum(math.log(max(r, 1e-9)) for r in ratios) / len(ratios))
    print(
        f"geometric-mean speedup: {geomean:.1f}x over blind enumeration "
        "(paper reports 10.7x vs the CFGAnalyzer variant; "
        "* = budget-capped without a witness)"
    )
