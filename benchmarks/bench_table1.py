"""E1 — regenerate Table 1 (the paper's single results exhibit).

For every corpus grammar this benchmark runs the counterexample finder
over all conflicts with the paper's time policy and records the Table 1
columns: #nonterms, #prods, #states, #conflicts, Amb?, #unif, #nonunif,
#time-out, total and average time. The collected rows are printed as a
Table 1 facsimile at the end of the session, with the paper's published
numbers alongside.

Heavy rows (conflict explosions and T/L grammars) run with reduced
budgets by default so the benchmark session stays in minutes; pass
``--table1-full`` for the paper's full 5 s / 120 s budgets.
"""

from __future__ import annotations

import pytest

from repro.automaton import build_lalr
from repro.core import CounterexampleFinder
from repro.corpus import all_specs, get

#: Grammars whose finder run is expensive (conflict explosions / T/L rows).
HEAVY = {"Java.2", "Java.4", "C.4", "Pascal.1", "java-ext1", "java-ext2"}

_ROWS: list[dict] = []


def _corpus_names() -> list[str]:
    return [spec.name for spec in all_specs()]


@pytest.mark.parametrize("name", _corpus_names())
def test_table1_row(benchmark, name, full_budgets):
    """Benchmark `explain_all` per grammar and collect its Table 1 row."""
    spec = get(name)
    grammar = spec.load()
    automaton = build_lalr(grammar)

    if name in HEAVY and not full_budgets:
        time_limit, cumulative = 1.0, 20.0
    else:
        time_limit, cumulative = 5.0, 120.0

    def run():
        finder = CounterexampleFinder(
            automaton, time_limit=time_limit, cumulative_limit=cumulative
        )
        return finder.explain_all()

    summary = benchmark.pedantic(run, rounds=1, iterations=1)

    row = {
        "name": name,
        "nonterms": grammar.num_user_nonterminals,
        "prods": grammar.num_user_productions,
        "states": len(automaton.states),
        "conflicts": summary.num_conflicts,
        "ambiguous": spec.ambiguous,
        "unifying": summary.num_unifying,
        "nonunifying": summary.num_nonunifying,
        "timeouts": summary.num_timeout,
        "skipped": summary.num_skipped_search,
        "total": summary.total_time,
        "average": summary.average_time,
        "paper": spec.paper,
    }
    _ROWS.append(row)

    # Invariant: every conflict is answered with some counterexample.
    assert (
        summary.num_unifying + summary.num_nonunifying + summary.num_timeout
        == summary.num_conflicts
    )
    # Unambiguous grammars can never produce a unifying counterexample.
    if not spec.ambiguous:
        assert summary.num_unifying == 0


def format_table1(rows: list[dict]) -> str:
    """Render collected rows as a Table 1 facsimile with paper references."""
    header = (
        f"{'Grammar':14} {'#nt':>4} {'#pr':>4} {'#st':>5} {'#cf':>5} "
        f"{'Amb':>3} {'#un':>4} {'#nu':>4} {'#to':>4} {'total':>8} {'avg':>8}"
        f"   paper(#cf un/nu/to total)"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        paper = row["paper"]
        if paper is not None:
            total = "T/L" if paper.total_time is None else f"{paper.total_time:.3f}"
            reference = (
                f"({paper.conflicts} {paper.unifying}/{paper.nonunifying}/"
                f"{paper.timeouts} {total})"
            )
        else:
            reference = "(n/a)"
        average = "  T/L" if row["conflicts"] == row["timeouts"] and row[
            "conflicts"
        ] else f"{row['average']:8.3f}"
        skipped = f" (+{row['skipped']})" if row.get("skipped") else ""
        lines.append(
            f"{row['name']:14} {row['nonterms']:>4} {row['prods']:>4} "
            f"{row['states']:>5} {row['conflicts']:>5} "
            f"{'Y' if row['ambiguous'] else 'N':>3} {row['unifying']:>4} "
            f"{row['nonunifying']:>4} {row['timeouts']:>4} "
            f"{row['total']:8.3f} {average}   {reference}{skipped}"
        )
    return "\n".join(lines)


def print_report() -> None:
    """Called from conftest at session end."""
    if _ROWS:
        print("\n\n=== Table 1 (reproduced) ===")
        print(format_table1(_ROWS))
