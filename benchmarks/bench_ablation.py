"""A1/A2 — ablations of the two key design choices.

* **A1: cost-shaped search.** §5.4's third observation: repeated
  production steps must be postponed by making them expensive. This
  ablation re-runs the unifying search with *uniform* action costs and
  compares explored-configuration counts on the paper's challenging
  conflict. With uniform costs the search drowns; with the paper's cost
  shaping it answers in milliseconds.

* **A2: shortest-path restriction vs -extendedsearch.** §6's tradeoff:
  restricting reverse transitions to the shortest lookahead-sensitive
  path is fast but incomplete. ``ambfailed01`` is the corpus witness:
  the restricted search cannot unify it, the extended search can.
"""

from __future__ import annotations

import pytest

import repro.core.configurations as config_module
from repro.automaton import build_lalr
from repro.core import (
    CounterexampleFinder,
    LookaheadSensitiveGraph,
    UnifyingSearch,
    path_states,
)
from repro.corpus import get

_A1: dict[str, tuple[bool, int]] = {}
_A2: dict[str, tuple[bool, bool]] = {}


@pytest.fixture
def uniform_costs():
    """Temporarily flatten the action costs (the ablated configuration)."""
    saved = (
        config_module.COST_PRODUCTION_STEP,
        config_module.COST_REVERSE_PRODUCTION_STEP,
    )
    config_module.COST_PRODUCTION_STEP = 1.0
    config_module.COST_REVERSE_PRODUCTION_STEP = 1.0
    yield
    (
        config_module.COST_PRODUCTION_STEP,
        config_module.COST_REVERSE_PRODUCTION_STEP,
    ) = saved


def _challenging_conflict():
    automaton = build_lalr(get("figure1").load())
    conflict = next(c for c in automaton.conflicts if str(c.terminal) == "DIGIT")
    allowed = path_states(
        LookaheadSensitiveGraph(automaton).shortest_path(conflict)
    )
    return automaton, conflict, allowed


def test_a1_shaped_costs(benchmark):
    """The paper's cost shaping solves the challenging conflict quickly."""
    automaton, conflict, allowed = _challenging_conflict()

    def run():
        return UnifyingSearch(
            automaton, conflict, allowed_prepend_states=allowed, time_limit=10.0
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _A1["shaped"] = (result.succeeded, result.stats.explored)
    assert result.succeeded


def test_a1_uniform_costs(benchmark, uniform_costs):
    """With uniform costs the same search explodes (bounded here at 3 s)."""
    automaton, conflict, allowed = _challenging_conflict()

    def run():
        return UnifyingSearch(
            automaton, conflict, allowed_prepend_states=allowed, time_limit=3.0
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _A1["uniform"] = (result.succeeded, result.stats.explored)
    # Uniform costs must be dramatically worse: either outright failure
    # within the budget, or at least an order of magnitude more work.
    if result.succeeded:
        assert result.stats.explored > 10 * _A1["shaped"][1]


@pytest.mark.parametrize("extended", [False, True])
def test_a2_restriction_tradeoff(benchmark, extended):
    """ambfailed01: restricted search cannot unify; extended search can."""
    automaton = build_lalr(get("ambfailed01").load())

    def run():
        finder = CounterexampleFinder(
            automaton, time_limit=10.0, extended_search=extended
        )
        return finder.explain_all()

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    unified = summary.num_unifying > 0
    _A2["extended" if extended else "restricted"] = (unified, True)
    if extended:
        assert unified, "extended search must find the unifying counterexample"
    else:
        assert not unified, "restricted search must miss it (the §6 tradeoff)"


def print_report() -> None:
    """Called from conftest at session end."""
    if _A1:
        print("\n\n=== A1: cost shaping (challenging conflict, figure1) ===")
        for mode, (succeeded, explored) in _A1.items():
            outcome = "found" if succeeded else "FAILED"
            print(f"  {mode:8} {outcome:6} after {explored} configurations")
    if _A2:
        print("\n=== A2: ambfailed01 under restricted vs extended search ===")
        for mode, (unified, _) in _A2.items():
            print(f"  {mode:10} unifying={'yes' if unified else 'no'}")
